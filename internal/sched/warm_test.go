package sched

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

// warmFixture draws a random FNPR analysis whose no-delay response times can
// seed the delay-aware variants.
func warmFixture(t *testing.T, r *rand.Rand) FNPRAnalysis {
	t.Helper()
	ts, err := synth.TaskSet(r, synth.TaskSetParams{
		N:           3 + r.Intn(4),
		Utilization: 0.4 + 0.4*r.Float64(),
		PeriodLo:    10,
		PeriodHi:    500,
		RoundPeriod: true,
		QFraction:   0.3,
		MinQ:        0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]delay.Function, len(ts))
	for i := 1; i < len(ts); i++ {
		peak := 0.15 * ts[i].C
		fn, err := delay.NewFrontLoaded(peak, peak/4, ts[i].C)
		if err != nil {
			t.Fatal(err)
		}
		fns[i] = fn
	}
	return FNPRAnalysis{Tasks: ts, Delay: fns, Method: Algorithm1}
}

// rtaIterations runs fn under a fresh registry and returns the RTA fixpoint
// iteration count it charged.
func rtaIterations(t *testing.T, fn func(g *guard.Ctx)) int64 {
	t.Helper()
	reg := obs.NewRegistry()
	g := guard.New(context.Background()).WithObs(obs.NewScope(reg))
	fn(g)
	return reg.Counter("sched.rta.iterations").Value()
}

// TestWarmStartBitIdentical: seeding the fixpoint from the no-delay response
// times (a sound lower bound, delay bounds being non-negative) must not
// change a single bit of the result, for Algorithm 1, Equation 4 and the
// limited refinement alike.
func TestWarmStartBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		a := warmFixture(t, r)
		nd := FNPRAnalysis{Tasks: a.Tasks, Delay: make([]delay.Function, len(a.Tasks)), Method: Algorithm1}
		seed, err := nd.ResponseTimesFPCtx(nil)
		if err != nil {
			t.Fatalf("trial %d: no-delay RTA: %v", trial, err)
		}
		for _, m := range []DelayMethod{Algorithm1, Equation4} {
			cold := a
			cold.Method = m
			warm := cold
			warm.Warm = seed
			cr, err := cold.ResponseTimesFPCtx(nil)
			if err != nil {
				t.Fatalf("trial %d (%v): cold: %v", trial, m, err)
			}
			wr, err := warm.ResponseTimesFPCtx(nil)
			if err != nil {
				t.Fatalf("trial %d (%v): warm: %v", trial, m, err)
			}
			for i := range cr {
				same := cr[i] == wr[i] ||
					(math.IsInf(cr[i], 1) && math.IsInf(wr[i], 1))
				if !same {
					t.Fatalf("trial %d (%v): task %d response %g (warm) != %g (cold)",
						trial, m, i, wr[i], cr[i])
				}
			}
		}
		coldLim, warmLim := a, a
		warmLim.Warm = seed
		cl, err := coldLim.ResponseTimesFPLimitedCtx(nil)
		if err != nil {
			t.Fatalf("trial %d: limited cold: %v", trial, err)
		}
		wl, err := warmLim.ResponseTimesFPLimitedCtx(nil)
		if err != nil {
			t.Fatalf("trial %d: limited warm: %v", trial, err)
		}
		for i := range cl.Response {
			same := cl.Response[i] == wl.Response[i] ||
				(math.IsInf(cl.Response[i], 1) && math.IsInf(wl.Response[i], 1))
			if !same {
				t.Fatalf("trial %d: limited task %d response %g (warm) != %g (cold)",
					trial, i, wl.Response[i], cl.Response[i])
			}
		}
	}
}

// TestWarmStartSavesIterations: across many random sets, warm-seeded RTAs
// must charge strictly fewer fixpoint iterations in aggregate — the entire
// point of the seeding — and the saving must be visible through the
// sched.rta.* counters.
func TestWarmStartSavesIterations(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	var coldTotal, warmTotal, seededTotal int64
	for trial := 0; trial < 40; trial++ {
		a := warmFixture(t, r)
		nd := FNPRAnalysis{Tasks: a.Tasks, Delay: make([]delay.Function, len(a.Tasks)), Method: Algorithm1}
		seed, err := nd.ResponseTimesFPCtx(nil)
		if err != nil {
			t.Fatal(err)
		}
		coldTotal += rtaIterations(t, func(g *guard.Ctx) {
			if _, err := a.ResponseTimesFPCtx(g); err != nil {
				t.Fatal(err)
			}
		})
		warm := a
		warm.Warm = seed
		reg := obs.NewRegistry()
		g := guard.New(context.Background()).WithObs(obs.NewScope(reg))
		if _, err := warm.ResponseTimesFPCtx(g); err != nil {
			t.Fatal(err)
		}
		warmTotal += reg.Counter("sched.rta.iterations").Value()
		seededTotal += reg.Counter("sched.rta.warm.seeded").Value()
	}
	if warmTotal >= coldTotal {
		t.Fatalf("warm start saved nothing: %d iterations warm vs %d cold", warmTotal, coldTotal)
	}
	if seededTotal == 0 {
		t.Fatal("sched.rta.warm.seeded never incremented")
	}
	t.Logf("iterations: cold=%d warm=%d (saved %d, %d tasks seeded)",
		coldTotal, warmTotal, coldTotal-warmTotal, seededTotal)
}

// TestWarmStartIgnoresBogusSeeds: +Inf, NaN and undersized seed vectors are
// ignored per task rather than poisoning the fixpoint.
func TestWarmStartIgnoresBogusSeeds(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 4, Q: 1},
		{Name: "b", C: 2, T: 8, Q: 1},
		{Name: "c", C: 4, T: 16, Q: 2},
	}
	ts.AssignRateMonotonic()
	fn, err := delay.NewFrontLoaded(0.5, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, nil, fn}, Method: Algorithm1}
	want, err := a.ResponseTimesFPCtx(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range [][]float64{
		{math.Inf(1), math.NaN(), math.Inf(1)},
		{0},
		nil,
	} {
		b := a
		b.Warm = seed
		got, err := b.ResponseTimesFPCtx(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %v: task %d response %g, want %g", seed, i, got[i], want[i])
			}
		}
	}
}

package sched

import (
	"context"
	"errors"
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

func guardedAnalysis(t *testing.T) FNPRAnalysis {
	t.Helper()
	ts := task.Set{
		{Name: "a", C: 1, T: 4, Q: 1},
		{Name: "b", C: 2, T: 8, Q: 1},
		{Name: "c", C: 4, T: 16, Q: 2},
	}
	ts.AssignRateMonotonic()
	fn, err := delay.NewFrontLoaded(0.5, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return FNPRAnalysis{
		Tasks:  ts,
		Delay:  []delay.Function{nil, nil, fn},
		Method: Algorithm1,
	}
}

// TestResponseTimesFPCtxCanceled: a canceled context stops the RTA before it
// runs the fixpoints; the error wraps guard.ErrCanceled.
func TestResponseTimesFPCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := guardedAnalysis(t)
	_, err := a.ResponseTimesFPCtx(guard.New(ctx))
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled context: got %v, want ErrCanceled", err)
	}
}

// TestResponseTimesFPCtxBudget: exhausting the step budget mid-RTA yields
// ErrBudgetExceeded — not +Inf response times, not a hang.
func TestResponseTimesFPCtxBudget(t *testing.T) {
	a := guardedAnalysis(t)
	g := guard.New(context.Background()).WithBudget(1)
	rts, err := a.ResponseTimesFPCtx(g)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budget 1: got %v, want ErrBudgetExceeded", err)
	}
	for i, r := range rts {
		if math.IsInf(r, 1) {
			t.Fatalf("budget exhaustion returned +Inf at index %d instead of failing", i)
		}
	}
}

func TestSchedulableEDFCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := guardedAnalysis(t)
	a.Tasks = append(task.Set{}, a.Tasks...)
	_, err := a.SchedulableEDFCtx(guard.New(ctx))
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled context: got %v, want ErrCanceled", err)
	}
}

package sched

import (
	"errors"
	"math"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// DelayMargin computes the system's criticality margin with respect to
// preemption delay: the largest factor k (within [0, maxScale]) such that
// the task set remains FP-schedulable when every task's delay function is
// scaled by k. A margin above 1 means the system tolerates worse caches
// than modelled; below 1 means the model already over-commits.
//
// Schedulability is monotone in the scale (larger delays only inflate C'
// and blocking), so the margin is found by binary search to the given
// precision. Each probe runs Analyze with opts and the scaled functions;
// cancellation/budget errors abort the search, while divergence at a probe
// just means "unschedulable at this scale". Warm seeds are dropped from the
// probes: response times computed at one scale do not lower-bound those at
// another.
func DelayMargin(g *guard.Ctx, ts task.Set, opts Options, maxScale, precision float64) (float64, error) {
	if maxScale <= 0 || precision <= 0 || math.IsNaN(maxScale) || math.IsNaN(precision) {
		return 0, guard.Invalidf("sched: invalid margin search parameters maxScale=%g precision=%g", maxScale, precision)
	}
	if len(opts.Delay) != len(ts) {
		return 0, guard.Invalidf("sched: %d delay functions for %d tasks", len(opts.Delay), len(ts))
	}
	if opts.Policy != FP || opts.CRPD != NoCRPD || opts.Limited {
		return 0, guard.Invalidf("sched: margin search supports only the plain FP delay analysis")
	}
	check := func(k float64) (bool, error) {
		scaled := make([]delay.Function, len(opts.Delay))
		for i, f := range opts.Delay {
			if f == nil {
				continue
			}
			pw, ok := f.(*delay.Piecewise)
			if !ok {
				return false, guard.Invalidf("sched: margin search needs piecewise delay functions")
			}
			s, err := pw.Scale(k)
			if err != nil {
				return false, err
			}
			scaled[i] = s
		}
		probe := opts
		probe.Delay = scaled
		probe.Warm = nil
		res, err := Analyze(g, ts, probe)
		if err != nil {
			if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrBudgetExceeded) {
				return false, err
			}
			// Divergent delay bounds mean unschedulable at this
			// scale, not a caller error.
			return false, nil
		}
		return res.Schedulable, nil
	}
	ok, err := check(0)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // not schedulable even with free preemptions
	}
	lo, hi := 0.0, maxScale
	if ok, err := check(maxScale); err != nil {
		return 0, err
	} else if ok {
		return maxScale, nil
	}
	for hi-lo > precision {
		mid := (lo + hi) / 2
		ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

package sched

import (
	"errors"
	"math"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// DelayMargin computes the system's criticality margin with respect to
// preemption delay: the largest factor k (within [0, maxScale]) such that
// the task set remains FP-schedulable when every task's delay function is
// scaled by k. A margin above 1 means the system tolerates worse caches
// than modelled; below 1 means the model already over-commits.
//
// Schedulability is monotone in the scale (larger delays only inflate C'
// and blocking), so the margin is found by binary search to the given
// precision.
func (a FNPRAnalysis) DelayMargin(maxScale, precision float64) (float64, error) {
	return a.DelayMarginCtx(nil, maxScale, precision)
}

// DelayMarginCtx is DelayMargin under a guard scope: each schedulability
// probe runs guarded, and cancellation/budget errors abort the search
// (divergence at a probe still just means "unschedulable at this scale").
func (a FNPRAnalysis) DelayMarginCtx(g *guard.Ctx, maxScale, precision float64) (float64, error) {
	if maxScale <= 0 || precision <= 0 || math.IsNaN(maxScale) || math.IsNaN(precision) {
		return 0, guard.Invalidf("sched: invalid margin search parameters maxScale=%g precision=%g", maxScale, precision)
	}
	if len(a.Delay) != len(a.Tasks) {
		return 0, guard.Invalidf("sched: %d delay functions for %d tasks", len(a.Delay), len(a.Tasks))
	}
	check := func(k float64) (bool, error) {
		scaled := make([]delay.Function, len(a.Delay))
		for i, f := range a.Delay {
			if f == nil {
				continue
			}
			pw, ok := f.(*delay.Piecewise)
			if !ok {
				return false, guard.Invalidf("sched: margin search needs piecewise delay functions")
			}
			s, err := pw.Scale(k)
			if err != nil {
				return false, err
			}
			scaled[i] = s
		}
		b := FNPRAnalysis{Tasks: a.Tasks, Delay: scaled, Method: a.Method}
		rts, err := b.ResponseTimesFPCtx(g)
		if err != nil {
			if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrBudgetExceeded) {
				return false, err
			}
			// Divergent delay bounds mean unschedulable at this
			// scale, not a caller error.
			return false, nil
		}
		return Schedulable(a.Tasks, rts), nil
	}
	ok, err := check(0)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // not schedulable even with free preemptions
	}
	lo, hi := 0.0, maxScale
	if ok, err := check(maxScale); err != nil {
		return 0, err
	} else if ok {
		return maxScale, nil
	}
	for hi-lo > precision {
		mid := (lo + hi) / 2
		ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

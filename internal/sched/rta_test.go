package sched

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func rmSet() task.Set {
	ts := task.Set{
		{Name: "a", C: 1, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
	ts.AssignRateMonotonic()
	return ts
}

func TestResponseTimesClassic(t *testing.T) {
	ts := rmSet()
	rts, err := ResponseTimes(ts)
	if err != nil {
		t.Fatal(err)
	}
	// a: 1. b: 2 + ceil(r/4)*1 -> 3. c: 4 + ceil(r/4)*1 + ceil(r/8)*2:
	// r=4 -> 4+1+2=7 -> 4+2+2=8 -> 4+2+2=8. R=8.
	want := []float64{1, 3, 8}
	for i, w := range want {
		if rts[i] != w {
			t.Fatalf("R[%d] = %g, want %g", i, rts[i], w)
		}
	}
	if !Schedulable(ts, rts) {
		t.Fatal("schedulable set reported unschedulable")
	}
}

func TestResponseTimesWithJitter(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 4, Jitter: 1},
		{Name: "b", C: 2, T: 8},
	}
	rts, err := ResponseTimes(ts)
	if err != nil {
		t.Fatal(err)
	}
	// a: R = C + J = 2.
	if rts[0] != 2 {
		t.Fatalf("R[a] = %g, want 2", rts[0])
	}
	// b: 2 + ceil((r+1)/4)*1: r=2 -> 2+1=3 -> ceil(4/4)=1 -> 3. R=3.
	if rts[1] != 3 {
		t.Fatalf("R[b] = %g, want 3", rts[1])
	}
}

func TestResponseTimesUnschedulable(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 3, T: 4},
		{Name: "b", C: 3, T: 8, D: 8},
	}
	rts, err := ResponseTimes(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rts[1], 1) {
		t.Fatalf("R[b] = %g, want +Inf", rts[1])
	}
	if Schedulable(ts, rts) {
		t.Fatal("unschedulable set reported schedulable")
	}
}

func TestResponseTimesValidation(t *testing.T) {
	if _, err := ResponseTimes(task.Set{}); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := ResponseTimes(task.Set{{Name: "", C: 1, T: 2}}); err == nil {
		t.Fatal("accepted invalid task")
	}
}

func TestResponseTimesCRPDBusquets(t *testing.T) {
	ts := rmSet()
	p := CRPDParams{MaxCRPD: []float64{0, 1, 1}}
	rts, err := ResponseTimesCRPD(ts, BusquetsMax, p)
	if err != nil {
		t.Fatal(err)
	}
	// b: 2 + ceil(r/4)*(1+1): r=2 -> 2+2=4 -> 2+2=4. R=4.
	if rts[1] != 4 {
		t.Fatalf("R[b] = %g, want 4", rts[1])
	}
	// CRPD-aware response times dominate the classic ones.
	classic, _ := ResponseTimes(ts)
	for i := range rts {
		if rts[i] < classic[i] {
			t.Fatalf("CRPD RTA %g below classic %g", rts[i], classic[i])
		}
	}
}

func TestResponseTimesCRPDPetters(t *testing.T) {
	ts := rmSet()
	// Victim max CRPD 5, but preempters can only damage 1 -> Petters
	// charges 1, Busquets charges 5.
	p := CRPDParams{MaxCRPD: []float64{0, 5, 5}, Damage: []float64{1, 1, 1}}
	rb, err := ResponseTimesCRPD(ts, BusquetsMax, p)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ResponseTimesCRPD(ts, PettersDamage, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rb {
		if rp[i] > rb[i] {
			t.Fatalf("Petters RTA %g above Busquets %g for task %d", rp[i], rb[i], i)
		}
	}
	if rp[1] >= rb[1] {
		t.Fatalf("expected strict improvement for task b: petters %g vs busquets %g", rp[1], rb[1])
	}
}

func TestResponseTimesCRPDNoCRPDDelegates(t *testing.T) {
	ts := rmSet()
	rts, err := ResponseTimesCRPD(ts, NoCRPD, CRPDParams{})
	if err != nil {
		t.Fatal(err)
	}
	classic, _ := ResponseTimes(ts)
	for i := range rts {
		if rts[i] != classic[i] {
			t.Fatal("NoCRPD variant differs from classic RTA")
		}
	}
}

func TestResponseTimesCRPDBadParams(t *testing.T) {
	ts := rmSet()
	if _, err := ResponseTimesCRPD(ts, BusquetsMax, CRPDParams{MaxCRPD: []float64{1}}); err == nil {
		t.Fatal("accepted short MaxCRPD")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if b := LiuLaylandBound(1); b != 1 {
		t.Fatalf("LL(1) = %g, want 1", b)
	}
	if b := LiuLaylandBound(3); math.Abs(b-0.7798) > 1e-3 {
		t.Fatalf("LL(3) = %g, want ~0.78", b)
	}
	if b := LiuLaylandBound(0); b != 0 {
		t.Fatalf("LL(0) = %g, want 0", b)
	}
}

func TestHyperbolicTest(t *testing.T) {
	if !HyperbolicTest(rmSet()) {
		t.Fatal("hyperbolic test rejected light set")
	}
	heavy := task.Set{
		{Name: "a", C: 3, T: 4},
		{Name: "b", C: 2, T: 8},
	}
	if HyperbolicTest(heavy) {
		t.Fatal("hyperbolic test accepted heavy set")
	}
}

func fnprFixture() FNPRAnalysis {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10},
		{Name: "lo", C: 40, T: 200, Q: 8},
	}
	fs := []delay.Function{
		nil, // highest priority task is never preempted
		delay.Constant(2, 40),
	}
	return FNPRAnalysis{Tasks: ts, Delay: fs, Method: Algorithm1}
}

func TestEffectiveWCETs(t *testing.T) {
	a := fnprFixture()
	cp, err := a.EffectiveWCETs()
	if err != nil {
		t.Fatal(err)
	}
	if cp[0] != 10 {
		t.Fatalf("C'[hi] = %g, want 10 (nil function)", cp[0])
	}
	// lo: f=2 const, Q=8, C=40: pnext: 8,14,20,26,32,38 -> 6 preemptions
	// x 2 = 12. C' = 52.
	if cp[1] != 52 {
		t.Fatalf("C'[lo] = %g, want 52", cp[1])
	}
}

func TestEffectiveWCETsEquation4(t *testing.T) {
	a := fnprFixture()
	a.Method = Equation4
	cp, err := a.EffectiveWCETs()
	if err != nil {
		t.Fatal(err)
	}
	alg := fnprFixture()
	cpAlg, _ := alg.EffectiveWCETs()
	if cp[1] < cpAlg[1] {
		t.Fatalf("Equation 4 C' %g below Algorithm 1 C' %g", cp[1], cpAlg[1])
	}
}

func TestEffectiveWCETsValidation(t *testing.T) {
	a := fnprFixture()
	a.Delay = a.Delay[:1]
	if _, err := a.EffectiveWCETs(); err == nil {
		t.Fatal("accepted mismatched delay slice")
	}
	b := fnprFixture()
	b.Delay[1] = delay.Constant(2, 99) // domain != C
	if _, err := b.EffectiveWCETs(); err == nil {
		t.Fatal("accepted domain mismatch")
	}
	c := fnprFixture()
	c.Tasks[1].Q = 0
	if _, err := c.EffectiveWCETs(); err == nil {
		t.Fatal("accepted missing Q")
	}
	d := fnprFixture()
	d.Method = DelayMethod(9)
	if _, err := d.EffectiveWCETs(); err == nil {
		t.Fatal("accepted unknown method")
	}
}

func TestResponseTimesFP(t *testing.T) {
	a := fnprFixture()
	rts, err := a.ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	// hi: C'=10 + blocking min(Q_lo, C'_lo) = min(8, 52) = 8 -> 18.
	if rts[0] != 18 {
		t.Fatalf("R[hi] = %g, want 18", rts[0])
	}
	// lo: C'=52 + ceil(r/100)*10: r=52 -> 52+10=62 -> 62. R=62.
	if rts[1] != 62 {
		t.Fatalf("R[lo] = %g, want 62", rts[1])
	}
	if !Schedulable(a.Tasks, rts) {
		t.Fatal("fixture should be schedulable")
	}
}

func TestResponseTimesFPDivergent(t *testing.T) {
	a := fnprFixture()
	a.Delay[1] = delay.Constant(8, 40) // delay == Q: diverges
	if _, err := a.ResponseTimesFP(); err == nil {
		t.Fatal("accepted divergent delay bound")
	}
}

func TestResponseTimesFPInflationUnschedulable(t *testing.T) {
	// Inflated C' exceeds the deadline: report +Inf, not an error.
	a := FNPRAnalysis{
		Tasks: task.Set{
			{Name: "hi", C: 10, T: 40, Q: 10},
			{Name: "lo", C: 30, T: 100, D: 34, Q: 5},
		},
		Delay: []delay.Function{nil, delay.Constant(1, 30)},
	}
	rts, err := a.ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	// lo: C' = 30 + 6 preemptions... Algorithm on const 1, Q=5, C=30:
	// pnext 5,9,13,17,21,25,29 -> 7 preemptions -> C' = 37 > D = 34.
	if !math.IsInf(rts[1], 1) {
		t.Fatalf("R[lo] = %g, want +Inf", rts[1])
	}
}

func TestSchedulableEDF(t *testing.T) {
	a := fnprFixture()
	ok, err := a.SchedulableEDF()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fixture should be EDF-schedulable")
	}
}

func TestSchedulableEDFOverload(t *testing.T) {
	a := FNPRAnalysis{
		Tasks: task.Set{
			{Name: "a", C: 50, T: 100, Q: 10},
			{Name: "b", C: 60, T: 100, Q: 10},
		},
		Delay: []delay.Function{nil, nil},
	}
	ok, err := a.SchedulableEDF()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("overloaded set reported schedulable")
	}
}

func TestSchedulableEDFDivergentDelay(t *testing.T) {
	a := fnprFixture()
	a.Delay[1] = delay.Constant(8, 40)
	ok, err := a.SchedulableEDF()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("divergent delay reported schedulable")
	}
}

// The paper's headline schedulability claim: Algorithm 1's tighter C' admits
// task sets that Equation 4 rejects.
func TestAlgorithm1AdmitsMoreThanEquation4(t *testing.T) {
	// A peaked delay function: high cost only in a narrow early region,
	// nothing later. Algorithm 1 sees that no reachable preemption point
	// (the first lies at Q = 5) carries any cost; Equation 4 charges the
	// global maximum for every window and blows past the deadline.
	c := 60.0
	f, err := delay.NewPiecewise([]float64{0, 2, c}, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := task.Set{
		{Name: "hi", C: 20, T: 100, Q: 20},
		{Name: "lo", C: c, T: 200, D: 80, Q: 5},
	}
	mk := func(m DelayMethod) FNPRAnalysis {
		return FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, f}, Method: m}
	}
	r1, err := mk(Algorithm1).ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := mk(Equation4).ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(ts, r1) {
		t.Fatalf("Algorithm 1 should admit the set (R = %v)", r1)
	}
	if Schedulable(ts, r4) {
		t.Fatalf("Equation 4 unexpectedly admits the set (R = %v)", r4)
	}
}

package sched

import (
	"math"
	"sort"

	"fnpr/internal/core"
	"fnpr/internal/guard"
	"fnpr/internal/npr"
	"fnpr/internal/obs"
	"fnpr/internal/task"
)

// This file implements the cutting-plane / QPA fixpoint solvers behind
// core.SolverAuto and core.SolverCutting (DESIGN.md §15): the response-time
// recurrence is accelerated by jumping to the root of its linear relaxation,
// and the EDF demand test by the QPA-style descending deadline walk. Both
// produce bit-identical results to the monotone baselines — differentially
// asserted on 10k random task sets in solver_test.go and fuzzed continuously
// by FuzzSolverEquivalence.

// Cutting-plane safety margins (mirroring the constants in internal/core):
// a jump target is the relaxation root shaved by max(cutRelShave·|root|,
// cutAbsShave), which exceeds the worst-case floating-point error of the
// root computation by orders of magnitude, so the target stays strictly
// below the real root and therefore at or below the least fixpoint the
// monotone iteration converges to. Relaxation slopes above cutSlopeCap
// would amplify rounding in lin/(1-slope) beyond what the shave covers, so
// no jump is attempted there.
const (
	cutRelShave = 1e-9
	cutAbsShave = 1e-12
	cutSlopeCap = 0.999
)

// cutRoot analyses the linear relaxation of task i's response-time
// recurrence anchored at a:
//
//	g(x) = base + Σ_{j<i} ceil((x+Jj)/Tj) · uj      (uj = Cj + γij)
//	h(x) = base + Σ_{j<i} max(nj, (x+Jj)/Tj) · uj   (nj = ceil((a+Jj)/Tj))
//
// h ≤ g for every x ≥ a (ceil dominates both its argument and its value at
// a), so h's least root lower-bounds the recurrence's least fixpoint above
// a. h is continuous, convex and piecewise linear with breakpoints nj·Tj −
// Jj where term j switches from its constant floor nj·uj to its linear part;
// the walk visits segments in breakpoint order, maintaining the running
// intercept and slope, and returns the first segment-consistent root
// (found). Segments whose accumulated slope reaches cutSlopeCap contribute
// no root: near- or super-unit slope would amplify rounding in lin/(1-slope)
// beyond what the shave covers.
//
// The walk doubles as a refutation: when h(x) - x clears the safety margin
// at the anchor, at every breakpoint and at limit, then h — and therefore g
// — has no fixpoint in [a, limit] (the difference is linear between checked
// points), and unsat is reported. With limit the deadline, the caller can
// conclude the monotone climb would only end past it, skipping the climb
// entirely. At most one of found/unsat is set; both false means the
// relaxation is inconclusive (e.g. a root hides in a slope-capped segment).
func cutRoot(ts task.Set, gamma func(i, j int) float64, i int, base, a, limit float64) (root float64, found, unsat bool) {
	type cutSeg struct{ bp, linD, slopeD float64 }
	segs := make([]cutSeg, 0, i)
	lin := base
	slope := 0.0
	for j := 0; j < i; j++ {
		u := ts[j].C
		if gamma != nil {
			u += gamma(i, j)
		}
		t, jit := ts[j].T, ts[j].Jitter
		n := math.Ceil((a + jit) / t)
		lin += n * u
		segs = append(segs, cutSeg{
			bp:     n*t - jit,
			linD:   u*(jit/t) - n*u,
			slopeD: u / t,
		})
	}
	sort.Slice(segs, func(x, y int) bool { return segs[x].bp < segs[y].bp })
	margin := func(x float64) float64 {
		return math.Max(cutRelShave*math.Abs(x), cutAbsShave)
	}
	// At an exact fixpoint h(a) - a is zero, which voids the refutation
	// (there IS a fixpoint at or below limit); the margin keeps float noise
	// from resurrecting it.
	certified := lin-a > margin(a)
	for k := 0; ; k++ {
		end, last := limit, true
		if k < len(segs) && segs[k].bp < limit {
			end, last = segs[k].bp, false
		}
		if slope < cutSlopeCap {
			if r := lin / (1 - slope); r <= end {
				if math.IsNaN(r) || math.IsInf(r, 0) {
					return 0, false, false
				}
				return r, true, false
			}
		}
		if certified && lin+slope*end-end <= margin(end) {
			certified = false
		}
		if last {
			return 0, false, certified
		}
		lin += segs[k].linD
		slope += segs[k].slopeD
	}
}

// edfMaxPoints caps the deadline list the QPA walk materializes (16 MB of
// float64 at the cap); sets beyond it fall back to the plain enumeration,
// which streams the deadlines instead.
const edfMaxPoints = 2_000_000

// edfDeadlines lists every absolute deadline d = Di + k·Ti ≤ horizon of the
// task set, sorted ascending, accumulated exactly like the monotone
// enumeration (d += T) so both solvers test identical float values. ok is
// false when the list would exceed edfMaxPoints.
func edfDeadlines(ts task.Set, horizon float64) (pts []float64, ok bool) {
	for _, tk := range ts {
		for d := tk.Deadline(); d <= horizon; d += tk.T {
			if len(pts) >= edfMaxPoints {
				return nil, false
			}
			pts = append(pts, d)
		}
	}
	sort.Float64s(pts)
	return pts, true
}

// edfDemandTest checks dbf'(t) + max_{Dj > t} min(Qj, C'j) <= t at every
// absolute deadline t up to the horizon, dispatching on the solver: the
// monotone solver enumerates every deadline, the cutting solvers run the
// QPA-style descending walk. Verdicts are identical (solver_test.go).
func edfDemandTest(g *guard.Ctx, sc *obs.Scope, inflated task.Set, cp []float64, horizon float64, solver core.Solver) (bool, error) {
	if solver == core.SolverMonotone {
		return edfDemandEnum(g, sc, inflated, cp, horizon)
	}
	pts, ok := edfDeadlines(inflated, horizon)
	if !ok {
		sc.Counter("sched.rta.solver.fallbacks").Inc()
		return edfDemandEnum(g, sc, inflated, cp, horizon)
	}
	return edfDemandQPA(g, sc, inflated, cp, pts)
}

// edfDemandEnum is the monotone baseline: check every absolute deadline, one
// guard step per deadline.
func edfDemandEnum(g *guard.Ctx, sc *obs.Scope, inflated task.Set, cp []float64, horizon float64) (bool, error) {
	solverIters := sc.Counter("sched.rta.solver.iterations")
	for _, tk := range inflated {
		for d := tk.Deadline(); d <= horizon; d += tk.T {
			if err := g.Tick(); err != nil {
				return false, err
			}
			solverIters.Inc()
			demand := npr.DemandBound(inflated, d)
			if demand+edfBlocking(inflated, cp, d) > d+1e-9 {
				return false, nil
			}
		}
	}
	return true, nil
}

// edfBlocking is the floating-NPR blocking term at deadline d: the largest
// min(Qj, C'j) over tasks whose relative deadline exceeds d. It is zero for
// d at or above the largest relative deadline.
func edfBlocking(inflated task.Set, cp []float64, d float64) float64 {
	var blocking float64
	for j := range inflated {
		if inflated[j].Deadline() > d {
			if q := math.Min(inflated[j].Q, cp[j]); q > blocking {
				blocking = q
			}
		}
	}
	return blocking
}

// edfDemandQPA runs the two-phase QPA-style walk over the sorted deadline
// list pts.
//
// Phase 1 descends over deadlines above Dmax (the largest relative
// deadline), where the blocking term is identically zero: after checking
// deadline t with demand h = dbf(t) ≤ t + 1e-9, every deadline d' in
// [h, t) satisfies dbf(d') ≤ dbf(t) = h ≤ d' (dbf is monotone in d and both
// solvers evaluate it on identical floats), so the walk skips straight to
// the largest deadline below min(h, t). Phase 2 checks every deadline at or
// below Dmax exhaustively — there the blocking term grows as d shrinks, so
// the skip argument does not apply. Every skipped point is provably
// violation-free and every other point is checked with the enumeration's
// exact predicate, so the verdict is identical.
func edfDemandQPA(g *guard.Ctx, sc *obs.Scope, inflated task.Set, cp []float64, pts []float64) (bool, error) {
	solverIters := sc.Counter("sched.rta.solver.iterations")
	var dmax float64
	for _, tk := range inflated {
		if d := tk.Deadline(); d > dmax {
			dmax = d
		}
	}
	// Phase 1: QPA descent above Dmax (blocking = 0).
	i := len(pts) - 1
	for i >= 0 && pts[i] > dmax {
		t := pts[i]
		if err := g.Tick(); err != nil {
			return false, err
		}
		solverIters.Inc()
		demand := npr.DemandBound(inflated, t)
		if demand > t+1e-9 {
			return false, nil
		}
		// Largest remaining deadline strictly below min(demand, t).
		i = sort.SearchFloat64s(pts[:i], math.Min(demand, t)) - 1
	}
	// Phase 2: exhaustive check at and below Dmax.
	limit := sort.Search(len(pts), func(k int) bool { return pts[k] > dmax })
	for k := 0; k < limit; k++ {
		if err := g.Tick(); err != nil {
			return false, err
		}
		solverIters.Inc()
		d := pts[k]
		demand := npr.DemandBound(inflated, d)
		if demand+edfBlocking(inflated, cp, d) > d+1e-9 {
			return false, nil
		}
	}
	return true, nil
}

// edfSchedulable runs the processor-demand test with effective WCETs and the
// floating-NPR blocking term of Bertogna and Baruah. Divergent effective
// WCETs and over-unit utilization are unschedulable, not errors.
func edfSchedulable(g *guard.Ctx, sc *obs.Scope, ts task.Set, opts Options, cp []float64) (bool, error) {
	inflated := ts.Clone()
	for i := range inflated {
		if math.IsInf(cp[i], 1) {
			return false, nil
		}
		inflated[i].C = cp[i]
	}
	if inflated.Utilization() > 1 {
		return false, nil
	}
	horizon, err := npr.AnalysisHorizon(inflated)
	if err != nil {
		return false, err
	}
	return edfDemandTest(g, sc, inflated, cp, horizon, opts.Solver)
}

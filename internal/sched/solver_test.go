package sched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

// solverFixture draws one differential trial: a random task set (optionally
// with release jitter and constrained deadlines, so the cut construction and
// the QPA phase-1 walk are both exercised) plus a mix of delay functions —
// nil (no delay), benign front-loaded curves, aggressive ones that push the
// set over its deadlines, and divergent ones whose peak reaches the NPR
// length Q so the per-task bound has no finite answer.
func solverFixture(r *rand.Rand) (task.Set, []delay.Function, error) {
	ts, err := synth.TaskSet(r, synth.TaskSetParams{
		N:           2 + r.Intn(5),
		Utilization: 0.35 + 0.6*r.Float64(),
		PeriodLo:    10,
		PeriodHi:    400,
		RoundPeriod: true,
		QFraction:   0.2 + 0.4*r.Float64(),
		MinQ:        0.05,
	})
	if err != nil {
		return nil, nil, err
	}
	if r.Intn(3) == 0 {
		for i := range ts {
			ts[i].Jitter = r.Float64() * 0.2 * ts[i].T
		}
	}
	if r.Intn(3) == 0 {
		// Constrained deadlines D < T: the EDF horizon then exceeds the
		// largest deadline, which is what sends the QPA walk through its
		// descending phase 1.
		for i := range ts {
			d := ts[i].C + r.Float64()*(ts[i].T-ts[i].C)
			if d < ts[i].T {
				ts[i].D = d
			}
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, err
	}
	fns := make([]delay.Function, len(ts))
	for i := 1; i < len(ts); i++ {
		var peak float64
		switch r.Intn(4) {
		case 0: // no delay for this task
			continue
		case 1: // divergent: the delay never drops below the NPR length
			peak = ts[i].Q * (1.1 + r.Float64())
		default: // benign-to-aggressive, but analysable
			peak = ts[i].Q * (0.2 + 0.7*r.Float64())
		}
		if peak > ts[i].C {
			peak = ts[i].C * 0.9
		}
		if peak <= 0 {
			continue
		}
		fn, err := delay.NewFrontLoaded(peak, peak/5, ts[i].C)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = fn
	}
	return ts, fns, nil
}

// sameFloats reports exact elementwise equality (+Inf included; == handles
// it, and NaN never appears in response times).
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// checkSolverPair runs Analyze under the monotone and cutting solvers and
// fails the test unless the outcomes are indistinguishable: identical errors
// (by guard class) or bit-identical results.
func checkSolverPair(t *testing.T, label string, ts task.Set, opts Options) {
	t.Helper()
	mono := opts
	mono.Solver = SolverMonotone
	cut := opts
	cut.Solver = SolverCutting
	mr, merr := Analyze(nil, ts, mono)
	cr, cerr := Analyze(nil, ts, cut)
	if (merr == nil) != (cerr == nil) {
		t.Fatalf("%s: monotone err=%v, cutting err=%v", label, merr, cerr)
	}
	if merr != nil {
		if errors.Is(merr, guard.ErrDiverged) != errors.Is(cerr, guard.ErrDiverged) {
			t.Fatalf("%s: error class mismatch: monotone %v, cutting %v", label, merr, cerr)
		}
		return
	}
	if mr.Schedulable != cr.Schedulable {
		t.Fatalf("%s: verdict mismatch: monotone %v, cutting %v", label, mr.Schedulable, cr.Schedulable)
	}
	if !sameFloats(mr.Response, cr.Response) {
		t.Fatalf("%s: response times differ:\nmonotone %v\ncutting  %v", label, mr.Response, cr.Response)
	}
	if !sameFloats(mr.EffectiveC, cr.EffectiveC) {
		t.Fatalf("%s: effective WCETs differ:\nmonotone %v\ncutting  %v", label, mr.EffectiveC, cr.EffectiveC)
	}
	if len(mr.PreemptionLimit) != len(cr.PreemptionLimit) {
		t.Fatalf("%s: preemption limits differ in length", label)
	}
	for i := range mr.PreemptionLimit {
		if mr.PreemptionLimit[i] != cr.PreemptionLimit[i] {
			t.Fatalf("%s: preemption limit %d differs: monotone %d, cutting %d",
				label, i, mr.PreemptionLimit[i], cr.PreemptionLimit[i])
		}
	}
}

// solverTrial runs the full differential battery on one fixture: plain and
// delay-aware FP (cold and warm, both methods), the limited refinement and
// the EDF demand test.
func solverTrial(t *testing.T, ts task.Set, fns []delay.Function, trial int) {
	t.Helper()
	checkSolverPair(t, "plain", ts, Options{})
	// Warm seeds come from the no-delay envelope, the contract every caller
	// of Options.Warm follows.
	var seed []float64
	if nd, err := Analyze(nil, ts, Options{Solver: SolverMonotone}); err == nil {
		seed = nd.Response
	}
	for _, m := range []DelayMethod{Algorithm1, Equation4} {
		checkSolverPair(t, m.String()+" cold", ts, Options{Delay: fns, Method: m})
		checkSolverPair(t, m.String()+" warm", ts, Options{Delay: fns, Method: m, Warm: seed})
	}
	if trial%5 == 0 {
		checkSolverPair(t, "limited", ts, Options{Delay: fns, Method: Algorithm1, Limited: true, Warm: seed})
	}
	checkSolverPair(t, "edf", ts, Options{Policy: EDF, Delay: fns, Method: Algorithm1})
}

// TestSolverDifferential is the tentpole guarantee: across 10k random task
// sets — schedulable, unschedulable and divergent alike — the cutting-plane
// solvers return bit-identical response times, effective WCETs, preemption
// limits and verdicts to the monotone baselines, for every analysis variant.
func TestSolverDifferential(t *testing.T) {
	trials := 10_000
	if testing.Short() {
		trials = 500
	}
	for trial := 0; trial < trials; trial++ {
		r := synth.SubRand(1811, 0, trial)
		ts, fns, err := solverFixture(r)
		if err != nil {
			continue
		}
		solverTrial(t, ts, fns, trial)
	}
}

// FuzzSolverEquivalence fuzzes the same differential: any seed whose fixture
// analyses must agree across solvers bit for bit.
func FuzzSolverEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 42, 1811, 99991, -7} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		ts, fns, err := solverFixture(r)
		if err != nil {
			t.Skip()
		}
		solverTrial(t, ts, fns, int(seed))
	})
}

// solverIterations runs fn under a fresh registry and returns the engine
// evaluations it charged (sched.rta.solver.iterations counts both FP fixpoint
// steps and EDF demand points, under every solver).
func solverIterations(t *testing.T, fn func(g *guard.Ctx)) int64 {
	t.Helper()
	reg := obs.NewRegistry()
	g := guard.New(context.Background()).WithObs(obs.NewScope(reg))
	fn(g)
	return reg.Counter("sched.rta.solver.iterations").Value()
}

// solverLoadParams describes one population of the iteration-reduction
// workload: wide log-uniform period ranges give the low-priority tasks long
// monotone climbs (one release boundary per step), which is where the
// cutting jumps and the no-fixpoint refutation pay off. The same classes
// drive BenchmarkRTASolver, so BENCH_PR9.json records the claim this test
// pins.
var solverLoadParams = []synth.TaskSetParams{
	{N: 10, Utilization: 0.55, PeriodLo: 10, PeriodHi: 10_000, RoundPeriod: true, QFraction: 0.9, MinQ: 0.1},
	{N: 12, Utilization: 0.55, PeriodLo: 10, PeriodHi: 50_000, RoundPeriod: true, QFraction: 0.9, MinQ: 0.1},
}

// solverLoadFixture draws one workload fixture of the given class with
// front-loaded delay functions at 80% of each task's NPR length.
func solverLoadFixture(r *rand.Rand, p synth.TaskSetParams) (task.Set, []delay.Function, error) {
	p.Utilization += 0.15 * r.Float64()
	ts, err := synth.TaskSet(r, p)
	if err != nil {
		return nil, nil, err
	}
	fns := make([]delay.Function, len(ts))
	for i := 1; i < len(ts); i++ {
		peak := math.Min(0.8*ts[i].Q, 0.9*ts[i].C)
		if peak <= 0 {
			continue
		}
		fn, err := delay.NewFrontLoaded(peak, peak/5, ts[i].C)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = fn
	}
	return ts, fns, nil
}

// TestSolverIterationReduction pins the acceleration claim the benchmarks
// report: against the warm-started monotone baseline, the cutting solver
// needs at least 25% fewer engine iterations in aggregate over the
// solverLoadParams populations (the workload BENCH_PR9.json records).
func TestSolverIterationReduction(t *testing.T) {
	var monoTotal, cutTotal int64
	trials := 0
	for ci, class := range solverLoadParams {
		for trial := 0; trial < 120; trial++ {
			r := synth.SubRand(7321, ci, trial)
			ts, fns, err := solverLoadFixture(r, class)
			if err != nil {
				continue
			}
			nd, err := Analyze(nil, ts, Options{Solver: SolverMonotone})
			if err != nil {
				continue
			}
			trials++
			opts := Options{Delay: fns, Method: Algorithm1, Warm: nd.Response}
			monoTotal += solverIterations(t, func(g *guard.Ctx) {
				opts := opts
				opts.Solver = SolverMonotone
				if _, err := Analyze(g, ts, opts); err != nil && !errors.Is(err, guard.ErrDiverged) {
					t.Fatal(err)
				}
			})
			cutTotal += solverIterations(t, func(g *guard.Ctx) {
				opts := opts
				opts.Solver = SolverCutting
				if _, err := Analyze(g, ts, opts); err != nil && !errors.Is(err, guard.ErrDiverged) {
					t.Fatal(err)
				}
			})
		}
	}
	if trials < 150 {
		t.Fatalf("only %d usable fixtures", trials)
	}
	if cutTotal > monoTotal*3/4 {
		t.Fatalf("cutting solver spent %d iterations vs %d warm-monotone (want >= 25%% reduction)",
			cutTotal, monoTotal)
	}
	t.Logf("iterations: warm monotone %d, cutting %d (%.1f%% reduction)",
		monoTotal, cutTotal, 100*(1-float64(cutTotal)/float64(monoTotal)))
}

// TestAnalyzeMatchesDeprecated: the consolidated entry point must reproduce
// every deprecated wrapper bit for bit (the wrappers pin the monotone solver;
// Analyze defaults to cutting — agreement here is the migration guarantee).
func TestAnalyzeMatchesDeprecated(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r := synth.SubRand(4177, 2, trial)
		ts, fns, err := solverFixture(r)
		if err != nil {
			continue
		}
		a := FNPRAnalysis{Tasks: ts, Delay: fns, Method: Algorithm1}
		oldR, oldErr := a.ResponseTimesFPCtx(nil)
		newR, newErr := Analyze(nil, ts, Options{Delay: fns, Method: Algorithm1})
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("trial %d: wrapper err=%v, Analyze err=%v", trial, oldErr, newErr)
		}
		if oldErr == nil && !sameFloats(oldR, newR.Response) {
			t.Fatalf("trial %d: FP responses differ: %v vs %v", trial, oldR, newR.Response)
		}
		oldOK, oldErr := a.SchedulableEDFCtx(nil)
		edf, newErr := Analyze(nil, ts, Options{Policy: EDF, Delay: fns, Method: Algorithm1})
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("trial %d: EDF wrapper err=%v, Analyze err=%v", trial, oldErr, newErr)
		}
		if oldErr == nil && oldOK != edf.Schedulable {
			t.Fatalf("trial %d: EDF verdicts differ: %v vs %v", trial, oldOK, edf.Schedulable)
		}
		oldLim, oldErr := a.ResponseTimesFPLimitedCtx(nil)
		newLim, newErr := Analyze(nil, ts, Options{Delay: fns, Method: Algorithm1, Limited: true})
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("trial %d: limited wrapper err=%v, Analyze err=%v", trial, oldErr, newErr)
		}
		if oldErr == nil {
			if !sameFloats(oldLim.Response, newLim.Response) ||
				!sameFloats(oldLim.EffectiveC, newLim.EffectiveC) {
				t.Fatalf("trial %d: limited results differ", trial)
			}
		}
	}
}

// TestCPrimeMemoIncremental: with a memo cache attached, re-analysing after a
// single-task edit recomputes only the edited task's delay bound — the other
// n-1 bounds are cache hits, counted by sched.cprime.{cached,computed}.
func TestCPrimeMemoIncremental(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 2, T: 20, Q: 1},
		{Name: "b", C: 5, T: 60, Q: 2},
		{Name: "c", C: 9, T: 150, Q: 3},
		{Name: "d", C: 15, T: 400, Q: 4},
	}
	fns := make([]delay.Function, len(ts))
	for i := 1; i < len(ts); i++ {
		fn, err := delay.NewFrontLoaded(0.5*ts[i].Q, 0.1*ts[i].Q, ts[i].C)
		if err != nil {
			t.Fatal(err)
		}
		fns[i] = fn
	}
	cache := core.NewResultCache(memo.Options{})
	run := func(ts task.Set) (cached, computed int64) {
		reg := obs.NewRegistry()
		g := guard.New(context.Background()).WithObs(obs.NewScope(reg))
		if _, err := Analyze(g, ts, Options{Delay: fns, Method: Algorithm1, Memo: cache}); err != nil {
			t.Fatal(err)
		}
		return reg.Counter("sched.cprime.cached").Value(),
			reg.Counter("sched.cprime.computed").Value()
	}
	if cached, computed := run(ts); cached != 0 || computed != 3 {
		t.Fatalf("cold run: cached=%d computed=%d, want 0/3", cached, computed)
	}
	if cached, computed := run(ts); cached != 3 || computed != 0 {
		t.Fatalf("repeat run: cached=%d computed=%d, want 3/0", cached, computed)
	}
	edited := ts.Clone()
	edited[2].Q = 2.5 // changes only task c's (function, Q) identity
	if cached, computed := run(edited); cached != 2 || computed != 1 {
		t.Fatalf("edited run: cached=%d computed=%d, want 2/1", cached, computed)
	}
}

package sched

import (
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// Test-local shims over Analyze and the package internals, standing in for
// the pre-Analyze entry points whose deprecation window closed. The
// in-package suites were written against these names; the thin adapters
// preserve that coverage verbatim while the exported surface stays
// consolidated (tools/lintapi ignores _test.go files).

func ResponseTimes(ts task.Set) ([]float64, error) {
	return ResponseTimesCtx(nil, ts)
}

func ResponseTimesCtx(g *guard.Ctx, ts task.Set) ([]float64, error) {
	if err := validateForRTA(ts); err != nil {
		return nil, err
	}
	return responseTimes(g, g.Obs(), ts, nil, nil, nil, core.SolverMonotone)
}

func ResponseTimesCRPD(ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	return ResponseTimesCRPDCtx(nil, ts, m, p)
}

func ResponseTimesCRPDCtx(g *guard.Ctx, ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	if err := validateForRTA(ts); err != nil {
		return nil, err
	}
	gamma, err := crpdGamma(ts, m, p)
	if err != nil {
		return nil, err
	}
	return responseTimes(g, g.Obs(), ts, gamma, nil, nil, core.SolverMonotone)
}

func validateForRTA(ts task.Set) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	if len(ts) == 0 {
		return guard.Invalidf("sched: empty task set")
	}
	return nil
}

// FNPRAnalysis is the legacy coupling of the floating-NPR task model with
// the paper's delay bound, reconstructed over Options/Analyze.
type FNPRAnalysis struct {
	Tasks  task.Set
	Delay  []delay.Function
	Method DelayMethod
	Warm   []float64
}

func (a FNPRAnalysis) options() Options {
	return Options{
		Method: a.Method,
		Delay:  a.Delay,
		Warm:   a.Warm,
		Solver: core.SolverMonotone,
	}
}

func (a FNPRAnalysis) EffectiveWCETs() ([]float64, error) {
	return a.EffectiveWCETsCtx(nil)
}

func (a FNPRAnalysis) EffectiveWCETsCtx(g *guard.Ctx) ([]float64, error) {
	if len(a.Delay) != len(a.Tasks) {
		return nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(a.Delay), len(a.Tasks))
	}
	cp, _, err := effectiveWCETs(g, g.Obs(), a.Tasks, a.options())
	return cp, err
}

func (a FNPRAnalysis) ResponseTimesFP() ([]float64, error) {
	return a.ResponseTimesFPCtx(nil)
}

func (a FNPRAnalysis) ResponseTimesFPCtx(g *guard.Ctx) ([]float64, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return nil, err
	}
	return fpResponseTimes(g, g.Obs(), a.Tasks, a.options(), cp)
}

func (a FNPRAnalysis) ResponseTimesFPLimited() (*LimitedResult, error) {
	return a.ResponseTimesFPLimitedCtx(nil)
}

func (a FNPRAnalysis) ResponseTimesFPLimitedCtx(g *guard.Ctx) (*LimitedResult, error) {
	return limitedAnalysis(g, g.Obs(), a.Tasks, a.options())
}

func (a FNPRAnalysis) SchedulableEDF() (bool, error) {
	return a.SchedulableEDFCtx(nil)
}

func (a FNPRAnalysis) SchedulableEDFCtx(g *guard.Ctx) (bool, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return false, err
	}
	return edfSchedulable(g, g.Obs(), a.Tasks, a.options(), cp)
}

func (a FNPRAnalysis) DelayMargin(maxScale, precision float64) (float64, error) {
	return DelayMargin(nil, a.Tasks, a.options(), maxScale, precision)
}

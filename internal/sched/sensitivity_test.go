package sched

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func TestDelayMarginBasic(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10, Prio: 0},
		{Name: "lo", C: 40, T: 200, Q: 8, Prio: 1},
	}
	a := FNPRAnalysis{
		Tasks:  ts,
		Delay:  []delay.Function{nil, delay.Constant(2, 40)},
		Method: Algorithm1,
	}
	m, err := a.DelayMargin(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 1 {
		t.Fatalf("margin = %g, want > 1 (set is comfortably schedulable)", m)
	}
	// Consistency: scaling at the found margin stays schedulable,
	// slightly above it does not (unless capped).
	if m < 10 {
		scaled, _ := delay.Constant(2, 40).Scale(m + 0.05)
		b := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, scaled}, Method: Algorithm1}
		rts, err := b.ResponseTimesFP()
		if err == nil && Schedulable(ts, rts) {
			t.Fatalf("margin %g not maximal: %g still schedulable", m, m+0.05)
		}
	}
}

func TestDelayMarginCapped(t *testing.T) {
	// No delay at all: any scale works, so the search caps at maxScale.
	ts := task.Set{{Name: "a", C: 1, T: 100, Q: 1, Prio: 0}}
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil}, Method: Algorithm1}
	m, err := a.DelayMargin(7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m != 7 {
		t.Fatalf("margin = %g, want cap 7", m)
	}
}

func TestDelayMarginZeroWhenOverloaded(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 60, T: 100, Q: 5, Prio: 0},
		{Name: "b", C: 60, T: 100, Q: 5, Prio: 1},
	}
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, nil}, Method: Algorithm1}
	m, err := a.DelayMargin(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Fatalf("margin = %g, want 0 for an overloaded set", m)
	}
}

func TestDelayMarginValidation(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 10, Q: 1, Prio: 0}}
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil}, Method: Algorithm1}
	if _, err := a.DelayMargin(0, 0.1); err == nil {
		t.Fatal("accepted maxScale=0")
	}
	if _, err := a.DelayMargin(10, 0); err == nil {
		t.Fatal("accepted precision=0")
	}
	if _, err := a.DelayMargin(math.NaN(), 0.1); err == nil {
		t.Fatal("accepted NaN maxScale")
	}
	b := FNPRAnalysis{Tasks: ts, Delay: nil, Method: Algorithm1}
	if _, err := b.DelayMargin(10, 0.1); err == nil {
		t.Fatal("accepted mismatched delay slice")
	}
}

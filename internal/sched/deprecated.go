package sched

import (
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// This file holds the pre-Analyze entry points, kept for one PR so external
// callers can migrate at their own pace. Every wrapper forwards to the same
// internals as Analyze with core.SolverMonotone, preserving the legacy
// tick-for-tick iteration behaviour (including guard budgets and the
// sched.rta.iterations counter); use Options.Solver to opt into the cutting
// solvers.

// ResponseTimes computes the classic fixed-priority response times (tasks
// sorted by priority, index 0 highest) by the standard fixpoint iteration:
//
//	Ri = Ci + Σ_{j<i} ceil((Ri + Jj)/Tj) * Cj
//
// It returns the fixpoint response times; a task whose iteration exceeds its
// deadline gets +Inf (unschedulable) and iteration continues for the others.
//
// Deprecated: use Analyze with the zero Options.
func ResponseTimes(ts task.Set) ([]float64, error) {
	return ResponseTimesCtx(nil, ts)
}

// ResponseTimesCtx is ResponseTimes under a guard scope: the fixpoint charges
// one guard step per iteration, so runaway iterations can be canceled or
// budget-bounded. A nil guard means no limits.
//
// Deprecated: use Analyze with the zero Options.
func ResponseTimesCtx(g *guard.Ctx, ts task.Set) ([]float64, error) {
	return responseTimes(g, g.Obs(), ts, nil, nil, nil, core.SolverMonotone)
}

// ResponseTimesCRPD computes response times with cache-related preemption
// delay folded into the interference term:
//
//	Ri = Ci + Σ_{j<i} ceil((Ri + Jj)/Tj) * (Cj + γij)
//
// with γij picked by the method. This reproduces the state-of-the-art
// integration styles the paper compares against.
//
// Deprecated: use Analyze with Options.CRPD.
func ResponseTimesCRPD(ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	return ResponseTimesCRPDCtx(nil, ts, m, p)
}

// ResponseTimesCRPDCtx is ResponseTimesCRPD under a guard scope.
//
// Deprecated: use Analyze with Options.CRPD.
func ResponseTimesCRPDCtx(g *guard.Ctx, ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	gamma, err := crpdGamma(ts, m, p)
	if err != nil {
		return nil, err
	}
	return responseTimes(g, g.Obs(), ts, gamma, nil, nil, core.SolverMonotone)
}

// FNPRAnalysis couples the floating-NPR task model with the paper's delay
// bound: each task carries its preemption delay function, its Q, and the
// analysis uses the effective WCET C'i = Ci + Algorithm1(fi, Qi).
//
// Deprecated: use Analyze with Options{Delay, Method, Warm}.
type FNPRAnalysis struct {
	// Tasks is the priority-sorted task set (for FP) or any order (EDF).
	Tasks task.Set
	// Delay holds each task's preemption delay function; a nil entry
	// means the task suffers no preemption delay. Function domains must
	// equal the task's C.
	Delay []delay.Function
	// Method selects how the cumulative delay is bounded; see
	// DelayMethod.
	Method DelayMethod
	// Warm optionally seeds the response-time fixpoints from previously
	// computed response times (jitter-inclusive, indexed like Tasks).
	//
	// Soundness contract: Warm[i] must be a proven lower bound on task
	// i's response time under THIS analysis — in practice, the response
	// times of the same task set under pointwise-smaller effective WCETs.
	// Delay bounds are non-negative, so the plain no-delay FNPR response
	// times lower-bound every delay-aware variant, and the Algorithm 1
	// response times lower-bound the (coarser) Equation 4 ones. A valid
	// seed changes nothing but the iteration count: results stay
	// bit-identical (see responseTimes). Non-finite or too-small entries
	// fall back to a cold start per task.
	Warm []float64
}

// options lowers the legacy struct to an Options value with the legacy
// monotone solver.
func (a FNPRAnalysis) options() Options {
	return Options{
		Method: a.Method,
		Delay:  a.Delay,
		Warm:   a.Warm,
		Solver: core.SolverMonotone,
	}
}

// EffectiveWCETs computes C'i for every task under the selected method
// (Equation 5 of the paper).
//
// Deprecated: use Analyze; Result.EffectiveC carries these values.
func (a FNPRAnalysis) EffectiveWCETs() ([]float64, error) {
	return a.EffectiveWCETsCtx(nil)
}

// EffectiveWCETsCtx is EffectiveWCETs under a guard scope: each task's delay
// bound runs with cancellation and budget checks.
//
// Deprecated: use Analyze; Result.EffectiveC carries these values.
func (a FNPRAnalysis) EffectiveWCETsCtx(g *guard.Ctx) ([]float64, error) {
	if len(a.Delay) != len(a.Tasks) {
		return nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(a.Delay), len(a.Tasks))
	}
	return effectiveWCETs(g, g.Obs(), a.Tasks, a.options())
}

// ResponseTimesFP runs the fixed-priority RTA with effective WCETs and the
// floating-NPR blocking term: a lower-priority task inside its NPR can delay
// τi by up to min(Qk, C'k):
//
//	Ri = C'i + max_{k>i} min(Qk, C'k) + Σ_{j<i} ceil((Ri+Jj)/Tj) * C'j
//
// Deprecated: use Analyze with Options{Delay, Method}.
func (a FNPRAnalysis) ResponseTimesFP() ([]float64, error) {
	return a.ResponseTimesFPCtx(nil)
}

// ResponseTimesFPCtx is ResponseTimesFP under a guard scope.
//
// Deprecated: use Analyze with Options{Delay, Method}.
func (a FNPRAnalysis) ResponseTimesFPCtx(g *guard.Ctx) ([]float64, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return nil, err
	}
	return fpResponseTimes(g, g.Obs(), a.Tasks, a.options(), cp)
}

// ResponseTimesFPLimited runs the fixed-priority FNPR response-time analysis
// with the cumulative delay of each task refined by the number of
// higher-priority releases within its response time.
//
// Deprecated: use Analyze with Options.Limited.
func (a FNPRAnalysis) ResponseTimesFPLimited() (*LimitedResult, error) {
	return a.ResponseTimesFPLimitedCtx(nil)
}

// ResponseTimesFPLimitedCtx is ResponseTimesFPLimited under a guard scope.
//
// Deprecated: use Analyze with Options.Limited.
func (a FNPRAnalysis) ResponseTimesFPLimitedCtx(g *guard.Ctx) (*LimitedResult, error) {
	return limitedAnalysis(g, g.Obs(), a.Tasks, a.options())
}

// SchedulableEDF runs the processor-demand test with effective WCETs and the
// floating-NPR blocking term of Bertogna and Baruah: for every absolute
// deadline t up to the analysis horizon,
//
//	dbf'(t) + max_{Dj > t} min(Qj, C'j) <= t
//
// Deprecated: use Analyze with Options{Policy: EDF, Delay, Method}.
func (a FNPRAnalysis) SchedulableEDF() (bool, error) {
	return a.SchedulableEDFCtx(nil)
}

// SchedulableEDFCtx is SchedulableEDF under a guard scope: the demand-bound
// sweep charges one guard step per deadline checked.
//
// Deprecated: use Analyze with Options{Policy: EDF, Delay, Method}.
func (a FNPRAnalysis) SchedulableEDFCtx(g *guard.Ctx) (bool, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return false, err
	}
	return edfSchedulable(g, g.Obs(), a.Tasks, a.options(), cp)
}

// DelayMargin computes the largest delay-scale factor preserving FP
// schedulability; see the package-level DelayMargin.
//
// Deprecated: use the package-level DelayMargin.
func (a FNPRAnalysis) DelayMargin(maxScale, precision float64) (float64, error) {
	return a.DelayMarginCtx(nil, maxScale, precision)
}

// DelayMarginCtx is DelayMargin under a guard scope.
//
// Deprecated: use the package-level DelayMargin.
func (a FNPRAnalysis) DelayMarginCtx(g *guard.Ctx, maxScale, precision float64) (float64, error) {
	return DelayMargin(g, a.Tasks, a.options(), maxScale, precision)
}

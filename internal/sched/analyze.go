package sched

import (
	"fmt"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
	"fnpr/internal/task"
)

// Policy selects the scheduling policy analysed.
type Policy int

const (
	// FP is fixed-priority scheduling (tasks in priority order, index 0
	// highest); the analysis is the response-time fixpoint.
	FP Policy = iota
	// EDF is earliest-deadline-first; the analysis is the processor-demand
	// test with the floating-NPR blocking term.
	EDF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FP:
		return "fp"
	case EDF:
		return "edf"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Solver re-exports the fixpoint solver selection shared with package core,
// so sched callers need not import core just to pick one.
type Solver = core.Solver

// Solver values, aliased from core.
const (
	SolverAuto     = core.SolverAuto
	SolverMonotone = core.SolverMonotone
	SolverCutting  = core.SolverCutting
)

// Options configures Analyze.
type Options struct {
	// Policy selects fixed-priority (default) or EDF analysis.
	Policy Policy

	// Method selects the per-task cumulative-delay bound used for the
	// effective WCETs when Delay is set: Algorithm1 (default, the paper's
	// contribution), Equation4 (the state-of-the-art baseline) or Exact
	// (the schedule-graph exploration of internal/exact, with per-task
	// degradation to Algorithm 1 where the state budget trips).
	Method DelayMethod

	// ExactStates caps the exact exploration's state count per task when
	// Method is Exact: zero selects exact.DefaultMaxStates, negative means
	// unbounded. Tasks over the budget degrade to Algorithm 1 (see
	// Result.Degraded).
	ExactStates int

	// Delay holds one preemption-delay function per task (nil entries =
	// no delay for that task; nil slice = classic analysis without
	// effective-WCET inflation). Mutually exclusive with CRPD.
	Delay []delay.Function

	// CRPD selects a CRPD-aware RTA variant (FP only); NoCRPD (default)
	// disables it. Mutually exclusive with Delay.
	CRPD CRPDMethod

	// CRPDParams carries the cache quantities CRPD methods consume.
	CRPDParams CRPDParams

	// Limited enables the preemption-count refinement (paper future work
	// (ii)): per-task delay bounds limited to the higher-priority release
	// count within the response time, iterated to a decreasing fixpoint.
	// Requires FP policy, Algorithm1 method and a Delay slice.
	Limited bool

	// Solver selects the fixpoint strategy: SolverAuto (default) and
	// SolverCutting accelerate fixpoints with cutting-plane jumps and the
	// EDF demand test with the QPA-style walk, SolverMonotone forces the
	// classic one-step iterations. Results are bit-identical either way.
	Solver Solver

	// Warm optionally seeds the FP fixpoint with previously computed
	// response times (jitter-inclusive scale). Callers must guarantee
	// warm[i] is at or below task i's true response time; see
	// responseTimes for the soundness argument. Ignored by EDF.
	Warm []float64

	// Obs overrides the observability scope (default: the guard's scope).
	Obs *obs.Scope

	// Memo, when non-nil, content-addresses the per-task delay bounds so
	// re-analysing after a single-task edit recomputes only that task's
	// bound (counted by sched.cprime.cached / sched.cprime.computed).
	Memo *memo.Cache
}

// Result carries the outcome of Analyze.
type Result struct {
	// Response holds per-task response times (+Inf = unschedulable);
	// nil for EDF, whose demand test yields only a verdict.
	Response []float64
	// EffectiveC holds the effective WCETs C' = C + delay bound used by
	// the analysis (+Inf where the bound diverged); nil when no delay
	// functions were supplied.
	EffectiveC []float64
	// PreemptionLimit holds the per-task preemption-count bounds at the
	// refined fixpoint (-1 where no delay function applies); nil unless
	// Options.Limited.
	PreemptionLimit []int
	// Degraded, non-nil only for Method Exact, flags tasks whose exact
	// exploration was infeasible and whose bound fell back to Algorithm 1.
	Degraded []bool
	// Schedulable is the verdict: every deadline met.
	Schedulable bool
}

// Analyze is the package's single entry point: it runs the schedulability
// analysis selected by opts on task set ts under guard scope g (nil = no
// limits). Fixed-priority paths return per-task response times; the EDF path
// returns a verdict only. A divergent delay bound is a Divergedf error for
// the FP response-time paths (no finite response exists to report) and an
// unschedulable verdict for EDF.
func Analyze(g *guard.Ctx, ts task.Set, opts Options) (*Result, error) {
	sc := opts.Obs
	if sc == nil {
		sc = g.Obs()
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("sched: empty task set")
	}
	if opts.CRPD != NoCRPD && opts.Delay != nil {
		return nil, guard.Invalidf("sched: CRPD inflation and delay functions are mutually exclusive")
	}
	if opts.Limited {
		if opts.Policy != FP || opts.Method != Algorithm1 || opts.Delay == nil {
			return nil, guard.Invalidf("sched: preemption-count refinement requires FP policy, Algorithm1 and delay functions")
		}
	}
	switch opts.Policy {
	case FP:
	case EDF:
		if opts.CRPD != NoCRPD {
			return nil, guard.Invalidf("sched: CRPD inflation is FP-only")
		}
	default:
		return nil, guard.Invalidf("sched: unknown policy %v", opts.Policy)
	}

	if opts.Policy == EDF {
		cp, degraded, err := effectiveWCETs(g, sc, ts, opts)
		if err != nil {
			return nil, err
		}
		ok, err := edfSchedulable(g, sc, ts, opts, cp)
		if err != nil {
			return nil, err
		}
		res := &Result{Schedulable: ok, Degraded: degraded}
		if opts.Delay != nil {
			res.EffectiveC = cp
		}
		return res, nil
	}

	if opts.CRPD != NoCRPD {
		gamma, err := crpdGamma(ts, opts.CRPD, opts.CRPDParams)
		if err != nil {
			return nil, err
		}
		rts, err := responseTimes(g, sc, ts, gamma, nil, opts.Warm, opts.Solver)
		if err != nil {
			return nil, err
		}
		return &Result{Response: rts, Schedulable: Schedulable(ts, rts)}, nil
	}

	if opts.Limited {
		lr, err := limitedAnalysis(g, sc, ts, opts)
		if err != nil {
			return nil, err
		}
		return &Result{
			Response:        lr.Response,
			EffectiveC:      lr.EffectiveC,
			PreemptionLimit: lr.PreemptionLimit,
			Schedulable:     Schedulable(ts, lr.Response),
		}, nil
	}

	if opts.Delay == nil {
		rts, err := responseTimes(g, sc, ts, nil, nil, opts.Warm, opts.Solver)
		if err != nil {
			return nil, err
		}
		return &Result{Response: rts, Schedulable: Schedulable(ts, rts)}, nil
	}

	cp, degraded, err := effectiveWCETs(g, sc, ts, opts)
	if err != nil {
		return nil, err
	}
	rts, err := fpResponseTimes(g, sc, ts, opts, cp)
	if err != nil {
		return nil, err
	}
	return &Result{
		Response:    rts,
		EffectiveC:  cp,
		Schedulable: Schedulable(ts, rts),
		Degraded:    degraded,
	}, nil
}

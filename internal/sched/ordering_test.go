package sched

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

// leq is the Inf-tolerant ordered comparison: a must not exceed b beyond a
// relative tolerance (response times can reach 1e5, so an absolute epsilon
// would be too strict on one side and vacuous on the other). +Inf <= +Inf
// holds, as it must for divergent tasks.
func leq(a, b float64) bool {
	if math.IsInf(b, 1) {
		return true
	}
	return a <= b+1e-9*(1+math.Abs(b))
}

// orderingTrial analyses one fixture under all three delay-accounting
// methods and asserts the sandwich the exact engine guarantees: per task,
// exact C' <= Algorithm 1 C' <= Equation 4 C', and the same ordering for
// the response times (the RTA fixpoint is monotone in the effective WCETs,
// so the ordering must carry through). Tasks the exact method degraded
// (state budget, non-piecewise-constant function) must match Algorithm 1
// bit for bit — degradation falls back, it never invents a third bound.
func orderingTrial(t *testing.T, ts task.Set, fns []delay.Function) {
	t.Helper()
	rx, errx := Analyze(nil, ts, Options{Delay: fns, Method: Exact})
	r1, err1 := Analyze(nil, ts, Options{Delay: fns, Method: Algorithm1})
	r4, err4 := Analyze(nil, ts, Options{Delay: fns, Method: Equation4})
	// A fixture any method refuses (divergence, budget) decides nothing:
	// the ordering property is about computed bounds.
	if errx != nil || err1 != nil || err4 != nil {
		return
	}
	for i := range ts {
		if !leq(rx.EffectiveC[i], r1.EffectiveC[i]) || !leq(r1.EffectiveC[i], r4.EffectiveC[i]) {
			t.Fatalf("task %d: effective WCET ordering violated: exact %v, alg1 %v, eq4 %v",
				i, rx.EffectiveC[i], r1.EffectiveC[i], r4.EffectiveC[i])
		}
		if !leq(rx.Response[i], r1.Response[i]) || !leq(r1.Response[i], r4.Response[i]) {
			t.Fatalf("task %d: response ordering violated: exact %v, alg1 %v, eq4 %v",
				i, rx.Response[i], r1.Response[i], r4.Response[i])
		}
		if rx.Degraded[i] && rx.EffectiveC[i] != r1.EffectiveC[i] {
			t.Fatalf("task %d: degraded exact C' %v differs from Algorithm 1 %v",
				i, rx.EffectiveC[i], r1.EffectiveC[i])
		}
	}
	// A verdict must never get worse with a tighter bound: if Algorithm 1
	// accepts the set, the exact method must too.
	if r1.Schedulable && !rx.Schedulable {
		t.Fatalf("alg1 schedulable but exact not: exact %v vs alg1 %v", rx.Response, r1.Response)
	}
	if r4.Schedulable && !r1.Schedulable {
		t.Fatalf("eq4 schedulable but alg1 not: alg1 %v vs eq4 %v", r1.Response, r4.Response)
	}
}

// TestBoundOrdering is the property battery for the three-bound sandwich on
// random task sets — jittered, constrained-deadline and divergent fixtures
// included.
func TestBoundOrdering(t *testing.T) {
	trials := 1500
	if testing.Short() {
		trials = 150
	}
	for trial := 0; trial < trials; trial++ {
		r := synth.SubRand(2012, 0, trial)
		ts, fns, err := solverFixture(r)
		if err != nil {
			continue
		}
		orderingTrial(t, ts, fns)
	}
}

// FuzzBoundOrdering fuzzes the same property: any seed whose fixture
// analyses cleanly must respect exact <= Algorithm 1 <= Equation 4.
func FuzzBoundOrdering(f *testing.F) {
	for _, seed := range []int64{1, 2012, 1811, 99991, -3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := synth.SubRand(seed, 1, 0)
		ts, fns, err := solverFixture(r)
		if err != nil {
			t.Skip()
		}
		orderingTrial(t, ts, fns)
	})
}

// Package textplot renders small numeric tables and charts as CSV and ASCII
// art, so the evaluation harness can regenerate the paper's figures without
// any plotting dependency.
package textplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve sampled on the shared X grid of a Table.
type Series struct {
	Name string
	Y    []float64
}

// Table is a set of curves over a common abscissa.
type Table struct {
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Notes carries per-table annotations (e.g. grid points whose value
	// was computed by a degraded fallback analysis). They are emitted as
	// "# ..." comment lines by WriteCSV and after the legend by ASCII, so
	// degraded data is never presented silently.
	Notes []string
}

// Validate checks shape consistency.
func (t *Table) Validate() error {
	if len(t.X) == 0 {
		return errors.New("textplot: empty X grid")
	}
	for _, s := range t.Series {
		if len(s.Y) != len(t.X) {
			return fmt.Errorf("textplot: series %q has %d points for %d X values", s.Name, len(s.Y), len(t.X))
		}
	}
	return nil
}

// WriteCSV emits the table as CSV: header Xlabel,series... then one row per
// X value. Infinities are emitted as "inf" so spreadsheets flag them.
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// ASCIIOptions control chart rendering.
type ASCIIOptions struct {
	Width, Height int
	LogY          bool
}

// ASCII renders the table as a character chart: one mark per series
// ('a', 'b', 'c', ... in series order), linear or logarithmic Y axis, with a
// legend. Non-finite values are skipped.
func (t *Table) ASCII(opt ASCIIOptions) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	xmin, xmax := t.X[0], t.X[len(t.X)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	yv := func(v float64) (float64, bool) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, false
		}
		if opt.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	for _, s := range t.Series {
		for _, v := range s.Y {
			if y, ok := yv(v); ok {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(ymin, 0) {
		return "", errors.New("textplot: no finite data to plot")
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// Later series are drawn first so that earlier ones win overlaps
	// (series order encodes importance).
	for si := len(t.Series) - 1; si >= 0; si-- {
		s := t.Series[si]
		mark := byte('a' + si%26)
		for i, v := range s.Y {
			y, ok := yv(v)
			if !ok {
				continue
			}
			col := int(float64(w-1) * (t.X[i] - xmin) / (xmax - xmin))
			row := h - 1 - int(float64(h-1)*(y-ymin)/(ymax-ymin))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	ylab := t.YLabel
	if opt.LogY {
		ylab += " (log10)"
	}
	fmt.Fprintf(&b, "%s\n", ylab)
	for r, row := range grid {
		yTop := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", yTop, string(row))
	}
	fmt.Fprintf(&b, "%10s  %-10.4g%*s%10.4g\n", t.XLabel, xmin, w-20, "", xmax)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "   %c = %s\n", byte('a'+si%26), s.Name)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String(), nil
}

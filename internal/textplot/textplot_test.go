package textplot

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	return &Table{
		XLabel: "Q", YLabel: "delay",
		X: []float64{1, 2, 3},
		Series: []Series{
			{Name: "alg", Y: []float64{10, 5, 2}},
			{Name: "soa", Y: []float64{100, 50, 20}},
		},
	}
}

func TestValidate(t *testing.T) {
	tb := sample()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	tb.Series[0].Y = tb.Series[0].Y[:2]
	if err := tb.Validate(); err == nil {
		t.Fatal("accepted ragged series")
	}
	empty := &Table{}
	if err := empty.Validate(); err == nil {
		t.Fatal("accepted empty table")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "Q,alg,soa" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10,100" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVInfinities(t *testing.T) {
	tb := &Table{
		XLabel: "x", X: []float64{1},
		Series: []Series{{Name: "s", Y: []float64{math.Inf(1)}}},
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inf") {
		t.Fatalf("infinity not rendered: %q", b.String())
	}
}

func TestASCIILinear(t *testing.T) {
	out, err := sample().ASCII(ASCIIOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a = alg") || !strings.Contains(out, "b = soa") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestASCIILog(t *testing.T) {
	out, err := sample().ASCII(ASCIIOptions{Width: 40, Height: 10, LogY: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log10") {
		t.Fatalf("log label missing:\n%s", out)
	}
}

func TestASCIISkipsNonFinite(t *testing.T) {
	tb := &Table{
		XLabel: "x", X: []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{math.Inf(1), 5}}},
	}
	if _, err := tb.ASCII(ASCIIOptions{}); err != nil {
		t.Fatal(err)
	}
	allInf := &Table{
		XLabel: "x", X: []float64{1},
		Series: []Series{{Name: "s", Y: []float64{math.Inf(1)}}},
	}
	if _, err := allInf.ASCII(ASCIIOptions{}); err == nil {
		t.Fatal("accepted all-infinite data")
	}
}

func TestASCIILogSkipsNonPositive(t *testing.T) {
	tb := &Table{
		XLabel: "x", X: []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{0, 10}}},
	}
	out, err := tb.ASCII(ASCIIOptions{LogY: true})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestFormatNum(t *testing.T) {
	if formatNum(math.Inf(-1)) != "-inf" {
		t.Fatal("negative infinity")
	}
	if formatNum(math.NaN()) != "nan" {
		t.Fatal("NaN")
	}
	if formatNum(2.5) != "2.5" {
		t.Fatal("plain number")
	}
}

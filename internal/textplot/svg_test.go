package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestWriteSVGBasic(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteSVG(&b, SVGOptions{Title: "demo"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "polyline", "alg", "soa", "demo", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two curves, two polylines at least.
	if strings.Count(out, "<polyline") < 2 {
		t.Fatal("expected a polyline per series")
	}
}

func TestWriteSVGLog(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteSVG(&b, SVGOptions{LogY: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(log)") {
		t.Fatal("log label missing")
	}
}

func TestWriteSVGGapsOnNonFinite(t *testing.T) {
	tb := &Table{
		XLabel: "x", YLabel: "y",
		X: []float64{1, 2, 3, 4},
		Series: []Series{{
			Name: "s",
			Y:    []float64{1, math.Inf(1), 3, 4},
		}},
	}
	var b strings.Builder
	if err := tb.WriteSVG(&b, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	// The infinite point splits the curve: only the 3-4 segment has two
	// points (the leading single point is dropped).
	if strings.Count(b.String(), "<polyline") != 1 {
		t.Fatalf("expected exactly one polyline, got:\n%s", b.String())
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var b strings.Builder
	if err := (&Table{}).WriteSVG(&b, SVGOptions{}); err == nil {
		t.Fatal("accepted empty table")
	}
	allInf := &Table{
		XLabel: "x", X: []float64{1},
		Series: []Series{{Name: "s", Y: []float64{math.Inf(1)}}},
	}
	if err := allInf.WriteSVG(&b, SVGOptions{}); err == nil {
		t.Fatal("accepted all-infinite data")
	}
	if err := sample().WriteSVG(&b, SVGOptions{Width: 10, Height: 10}); err == nil {
		t.Fatal("accepted too-small canvas")
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", got)
	}
}

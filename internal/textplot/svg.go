package textplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// SVGOptions control vector-chart rendering.
type SVGOptions struct {
	// Width and Height are the image dimensions in pixels (defaults
	// 720x440).
	Width, Height int
	// LogY plots the Y axis in log10.
	LogY bool
	// Title is drawn above the plot area.
	Title string
}

// seriesColors is a small colour cycle for the curves.
var seriesColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#7f7f7f", "#9467bd", "#ff7f0e",
	"#17becf", "#8c564b",
}

// WriteSVG renders the table as a line chart in SVG. Non-finite values
// break the polyline (gaps); with LogY, non-positive values do too.
func (t *Table) WriteSVG(w io.Writer, opt SVGOptions) error {
	if err := t.Validate(); err != nil {
		return err
	}
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 440
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	if plotW <= 0 || plotH <= 0 {
		return errors.New("textplot: image too small")
	}

	yv := func(v float64) (float64, bool) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, false
		}
		if opt.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	xmin, xmax := t.X[0], t.X[len(t.X)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, v := range s.Y {
			if y, ok := yv(v); ok {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(ymin, 0) {
		return errors.New("textplot: no finite data to plot")
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return marginL + plotW*(x-xmin)/(xmax-xmin) }
	py := func(y float64) float64 { return marginT + plotH*(1-(y-ymin)/(ymax-ymin)) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16">%s</text>`+"\n",
			marginL, escapeXML(opt.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Ticks: 5 on each axis.
	for i := 0; i <= 4; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/4
		x := px(xv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%.4g</text>`+"\n",
			x, height-marginB+18, xv)

		yvv := ymin + (ymax-ymin)*float64(i)/4
		y := py(yvv)
		label := yvv
		if opt.LogY {
			label = math.Pow(10, yvv)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.4g</text>`+"\n",
			marginL-8, y+4, label)
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-8, escapeXML(t.XLabel))
	ylab := t.YLabel
	if opt.LogY {
		ylab += " (log)"
	}
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escapeXML(ylab))

	// Curves.
	for si, s := range t.Series {
		color := seriesColors[si%len(seriesColors)]
		var seg []string
		flush := func() {
			if len(seg) >= 2 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
					color, strings.Join(seg, " "))
			}
			seg = seg[:0]
		}
		for i, v := range s.Y {
			y, ok := yv(v)
			if !ok {
				flush()
				continue
			}
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", px(t.X[i]), py(y)))
		}
		flush()
		// Legend entry.
		ly := marginT + 16*float64(si)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			float64(width-marginR)-150, ly, float64(width-marginR)-130, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			float64(width-marginR)-125, ly+4, escapeXML(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

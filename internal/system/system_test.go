package system

import (
	"math/rand"
	"testing"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/npr"
	"fnpr/internal/synth"
)

// smallProgram builds a 3-block chain touching the given lines.
func smallProgram(load, reuse []cache.Line, emin, emax float64) (*cfg.Graph, cache.AccessMap) {
	g := cfg.New()
	a := g.AddSimple("load", emin, emax)
	b := g.AddSimple("work", emin*3, emax*3)
	c := g.AddSimple("tail", emin, emax)
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	return g, cache.AccessMap{a: load, c: reuse}
}

func sysConfig() Config {
	g1, a1 := smallProgram([]cache.Line{0, 1}, []cache.Line{0}, 1, 1)
	g2, a2 := smallProgram([]cache.Line{8, 9, 10}, []cache.Line{8, 9}, 4, 5)
	g3, a3 := smallProgram([]cache.Line{16, 17, 18, 19}, []cache.Line{16, 17, 18}, 8, 10)
	return Config{
		Tasks: []TaskProgram{
			{Name: "hi", T: 40, Prio: 0, Graph: g1, Accesses: a1},
			{Name: "mid", T: 150, Prio: 1, Graph: g2, Accesses: a2},
			{Name: "lo", T: 600, Prio: 2, Graph: g3, Accesses: a3},
		},
		Cache:  cache.Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 0.5},
		Policy: npr.FixedPriority,
	}
}

func TestAnalyzePipeline(t *testing.T) {
	res, err := Analyze(sysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(res.Tasks))
	}
	// Priority order respected.
	if res.Set[0].Name != "hi" || res.Set[2].Name != "lo" {
		t.Fatalf("order = %v", res.Set)
	}
	// C derived from the CFG WCET: hi = 1 + 3 + 1 = 5.
	if res.Set[0].C != 5 {
		t.Fatalf("C[hi] = %g, want 5", res.Set[0].C)
	}
	if res.Set[0].BCET != 5 {
		t.Fatalf("BCET[hi] = %g, want 5", res.Set[0].BCET)
	}
	// Q derived (nonzero) for every task.
	for _, tk := range res.Set {
		if tk.Q <= 0 {
			t.Fatalf("Q[%s] = %g, want > 0", tk.Name, tk.Q)
		}
	}
	// lo loads 4 lines; inside the load block itself all 4 are already
	// both reachable and live (the block's own trailing accesses), so
	// the peak CRPD is 4 x 0.5 = 2; after the load phase only the 3
	// reused lines remain useful (1.5).
	loA := res.Tasks[2]
	if loA.MaxCRPD != 2 {
		t.Fatalf("lo max CRPD = %g, want 2", loA.MaxCRPD)
	}
	if v := loA.Delay.Eval(loA.Task.C * 0.5); v != 1.5 {
		t.Fatalf("lo mid-execution delay = %g, want 1.5", v)
	}
	if loA.TotalDelay < 0 || loA.EffectiveC != loA.Task.C+loA.TotalDelay {
		t.Fatalf("lo analysis inconsistent: %+v", loA)
	}
	if !res.Schedulable {
		t.Fatalf("light system should be schedulable: R = %v", res.ResponseTimes)
	}
	if len(res.ResponseTimes) != 3 {
		t.Fatal("FP analysis must produce response times")
	}
}

func TestAnalyzeEDF(t *testing.T) {
	c := sysConfig()
	c.Policy = npr.EDF
	res, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("EDF should admit the light system")
	}
	if res.ResponseTimes != nil {
		t.Fatal("EDF analysis should not produce response times")
	}
}

func TestAnalyzeECBRefinement(t *testing.T) {
	// The preempters (hi, mid) touch lines 0,1,8,9,10 -> sets 0,1,2 of
	// an 8-set cache. lo's useful lines 16,17,18 map to sets 0,1,2 too,
	// so refinement keeps them; now give lo useful lines in sets the
	// preempters never touch and watch the delay shrink.
	g3, a3 := smallProgram([]cache.Line{20, 21, 22}, []cache.Line{20, 21, 22}, 8, 10)
	c := sysConfig()
	c.Tasks[2] = TaskProgram{Name: "lo", T: 600, Prio: 2, Graph: g3, Accesses: a3}
	// Lines 20,21,22 -> sets 4,5,6; preempters touch sets 0,1,2.
	c.UseECB = true
	res, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[2].MaxCRPD != 0 {
		t.Fatalf("ECB-refined lo CRPD = %g, want 0 (disjoint sets)", res.Tasks[2].MaxCRPD)
	}
	// Without refinement it is positive.
	c.UseECB = false
	res2, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tasks[2].MaxCRPD <= 0 {
		t.Fatal("UCB-only CRPD should be positive")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Config{}); err == nil {
		t.Fatal("accepted empty system")
	}
	c := sysConfig()
	c.Cache.Sets = 3
	if _, err := Analyze(c); err == nil {
		t.Fatal("accepted invalid cache")
	}
	c = sysConfig()
	c.Tasks[0].Graph = nil
	if _, err := Analyze(c); err == nil {
		t.Fatal("accepted nil graph")
	}
	c = sysConfig()
	c.Policy = npr.Policy(9)
	if _, err := Analyze(c); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestAnalyzeWithLoopsAndRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		var tasks []TaskProgram
		for i := 0; i < 3; i++ {
			g, acc, err := synth.CFG(r, synth.CFGParams{
				Blocks: 6 + r.Intn(10), MaxFanout: 2,
				EMinLo: 1, EMinHi: 3, ESpread: 2,
				Lines: 24, AccessesPerBloc: 4, Reuse: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, TaskProgram{
				Name:  string(rune('a' + i)),
				T:     400 * float64(i+1) * (1 + r.Float64()),
				Prio:  i,
				Graph: g, Accesses: acc,
			})
		}
		res, err := Analyze(Config{
			Tasks:  tasks,
			Cache:  cache.Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 0.2},
			Policy: npr.FixedPriority,
			UseECB: trial%2 == 0,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, ta := range res.Tasks {
			if ta.EffectiveC < ta.Task.C {
				t.Fatalf("trial %d: C' below C", trial)
			}
			if ta.Delay.Domain() != ta.Task.C {
				t.Fatalf("trial %d: delay domain mismatch", trial)
			}
		}
	}
}

// Package system is the top-level integration layer: it takes a task set in
// which every task carries its control-flow graph and memory accesses, and
// drives the complete analysis pipeline of the paper end to end:
//
//  1. loop-collapse each task's CFG and compute execution intervals
//     (package cfg) and [BCET, WCET] (package wcet);
//  2. run the UCB analysis per task and the ECB analysis of its preempters
//     (package cache);
//  3. assemble each task's preemption delay function fi(t) (package delay),
//     refined against the union of higher-priority / shorter-deadline
//     evicting cache blocks;
//  4. derive the floating NPR lengths Qi from the blocking tolerances
//     (package npr) unless given;
//  5. bound each task's cumulative preemption delay with Algorithm 1 and
//     run the delay-aware schedulability analysis (packages core, sched).
//
// This is the "WCET-tool side" story a downstream user needs: everything
// upstream of Algorithm 1 produced from program structure rather than
// hand-written delay functions.
package system

import (
	"errors"
	"fmt"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/task"
)

// TaskProgram couples a task's scheduling parameters with its program.
type TaskProgram struct {
	// Name, T, D, Prio, Jitter follow the task model; C is derived from
	// the program's WCET.
	Name   string
	T, D   float64
	Prio   int
	Jitter float64

	// Q is the floating NPR length; 0 means "derive from the blocking
	// tolerance analysis".
	Q float64

	// Graph is the task's control-flow graph (may contain natural loops
	// with bounds); Accesses lists the memory lines touched per block.
	Graph    *cfg.Graph
	Accesses cache.AccessMap
}

// Config describes the whole system.
type Config struct {
	Tasks []TaskProgram
	// Cache is the shared cache configuration.
	Cache cache.Config
	// Policy selects FP (tasks sorted by Prio) or EDF.
	Policy npr.Policy
	// UseECB refines each victim's delay function against the union of
	// the evicting cache blocks of the tasks that can preempt it.
	UseECB bool
}

// TaskAnalysis is the per-task outcome.
type TaskAnalysis struct {
	Task  task.Task
	BCET  float64
	Delay *delay.Piecewise
	// MaxCRPD is the largest single-preemption delay.
	MaxCRPD float64
	// TotalDelay is the Algorithm 1 bound for the task's Q.
	TotalDelay float64
	// EffectiveC is C + TotalDelay (Equation 5).
	EffectiveC float64
}

// Result is the system-level outcome.
type Result struct {
	Tasks []TaskAnalysis
	// Set is the derived task set (C from WCET, Q assigned), priority
	// sorted for FP.
	Set task.Set
	// ResponseTimes holds the FP delay-aware response times (nil under
	// EDF).
	ResponseTimes []float64
	// EDFSchedulable holds the EDF test verdict (FP: from response
	// times).
	Schedulable bool
}

// Analyze runs the pipeline.
func Analyze(cfgSys Config) (*Result, error) {
	n := len(cfgSys.Tasks)
	if n == 0 {
		return nil, errors.New("system: no tasks")
	}
	if err := cfgSys.Cache.Validate(); err != nil {
		return nil, err
	}

	type prepared struct {
		tp   TaskProgram
		off  *cfg.Offsets
		col  *cfg.Collapsed
		ucb  *cache.UCBResult
		ecb  cache.LineSet
		bcet float64
		wcet float64
	}
	preps := make([]prepared, 0, n)
	for _, tp := range cfgSys.Tasks {
		if tp.Graph == nil {
			return nil, fmt.Errorf("system: task %s has no graph", tp.Name)
		}
		col, err := tp.Graph.CollapseLoops()
		if err != nil {
			return nil, fmt.Errorf("system: task %s: %w", tp.Name, err)
		}
		off, err := col.Graph.AnalyzeOffsets()
		if err != nil {
			return nil, fmt.Errorf("system: task %s: %w", tp.Name, err)
		}
		acc := cache.RemapAccesses(col, tp.Accesses)
		ucb, err := cache.AnalyzeUCB(col.Graph, acc, cfgSys.Cache)
		if err != nil {
			return nil, fmt.Errorf("system: task %s: %w", tp.Name, err)
		}
		preps = append(preps, prepared{
			tp: tp, off: off, col: col, ucb: ucb,
			ecb:  cache.ECB(acc),
			bcet: off.BCET, wcet: off.WCET,
		})
	}

	// Build the task set (C = WCET) and sort for FP.
	set := make(task.Set, 0, n)
	for _, p := range preps {
		set = append(set, task.Task{
			Name: p.tp.Name, C: p.wcet, BCET: p.bcet,
			T: p.tp.T, D: p.tp.D, Prio: p.tp.Prio, Jitter: p.tp.Jitter,
			Q: p.tp.Q,
		})
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cfgSys.Policy == npr.FixedPriority {
		// Sort indices by (Prio, Name) to keep preps aligned.
		for i := 1; i < n; i++ {
			for j := i; j > 0; j-- {
				a, b := set[order[j-1]], set[order[j]]
				if a.Prio < b.Prio || (a.Prio == b.Prio && a.Name <= b.Name) {
					break
				}
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
	}
	sorted := make(task.Set, n)
	for i, idx := range order {
		sorted[i] = set[idx]
	}

	// Assign missing Q from the blocking tolerances.
	needQ := false
	for _, tk := range sorted {
		if tk.Q == 0 {
			needQ = true
		}
	}
	if needQ {
		qs, err := npr.AssignQ(sorted, cfgSys.Policy)
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
		for i := range sorted {
			if sorted[i].Q == 0 {
				sorted[i].Q = qs[i].Q
			}
		}
	}

	// Preempter ECBs per victim: under FP, tasks with higher priority;
	// under EDF, any task can have an earlier absolute deadline at run
	// time, so the union of all other tasks' ECBs is the safe choice.
	preempterECB := func(victim int) cache.LineSet {
		union := cache.NewLineSet()
		for i, idx := range order {
			p := preps[idx]
			switch cfgSys.Policy {
			case npr.FixedPriority:
				if i < victim {
					union.Union(p.ecb)
				}
			default: // EDF
				if i != victim {
					union.Union(p.ecb)
				}
			}
		}
		return union
	}

	res := &Result{Set: sorted}
	fns := make([]delay.Function, n)
	for i, idx := range order {
		p := preps[idx]
		var f *delay.Piecewise
		var err error
		if cfgSys.UseECB {
			f, err = delay.FromUCBAgainst(p.off, p.ucb, preempterECB(i))
		} else {
			f, err = delay.FromUCB(p.off, p.ucb)
		}
		if err != nil {
			return nil, fmt.Errorf("system: task %s: %w", p.tp.Name, err)
		}
		_, maxCRPD := f.Max()
		r, err := core.Analyze(nil, f, sorted[i].Q, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("system: task %s: %w", p.tp.Name, err)
		}
		res.Tasks = append(res.Tasks, TaskAnalysis{
			Task: sorted[i], BCET: p.bcet,
			Delay: f, MaxCRPD: maxCRPD,
			TotalDelay: r.TotalDelay,
			EffectiveC: sorted[i].C + r.TotalDelay,
		})
		if maxCRPD > 0 {
			fns[i] = f
		}
	}

	opts := sched.Options{Delay: fns, Method: sched.Algorithm1}
	switch cfgSys.Policy {
	case npr.FixedPriority:
		r, err := sched.Analyze(nil, sorted, opts)
		if err != nil {
			return nil, err
		}
		res.ResponseTimes = r.Response
		res.Schedulable = r.Schedulable
	case npr.EDF:
		opts.Policy = sched.EDF
		r, err := sched.Analyze(nil, sorted, opts)
		if err != nil {
			return nil, err
		}
		res.Schedulable = r.Schedulable
	default:
		return nil, fmt.Errorf("system: unknown policy %v", cfgSys.Policy)
	}
	return res, nil
}

// Package delay implements the per-task preemption delay function fi(t) of
// the paper: an upper bound on the cost of a (first) preemption occurring
// when the task has progressed t time units into its execution (Section III
// and IV).
//
// The canonical representation is the piecewise-constant Piecewise type —
// the natural shape of a function built as fi(t) = max_{b in BB(t)} CRPD_b
// over the block windows of a control-flow graph (FromCFG). Smooth synthetic
// functions such as the paper's Gaussian benchmarks (synth.go) are lifted to
// piecewise-constant upper envelopes by sampling (envelope.go); running the
// analysis on an upper envelope of f is sound for f, because Algorithm 1's
// bound is monotone in the function (see internal/core).
package delay

import (
	"fmt"
	"math"
	"sort"

	"fnpr/internal/guard"
)

// Function is the query interface Algorithm 1 needs from a preemption delay
// function.
type Function interface {
	// Domain returns C, the length of the interval [0, C] on which the
	// function is defined (the task's isolated WCET).
	Domain() float64

	// Eval returns f(t). Arguments outside [0, Domain] are clamped.
	Eval(t float64) float64

	// MaxOn returns the maximum of f over [a, b] (clamped to the domain)
	// together with the earliest point attaining it.
	MaxOn(a, b float64) (tmax, fmax float64)

	// FirstReachDescending returns the smallest x in [a, b] such that
	// f(x) >= c - x (the first point where f reaches the descending
	// unit-slope line D used by Algorithm 1), or ok=false when f stays
	// strictly below the line on the whole interval.
	FirstReachDescending(a, b, c float64) (x float64, ok bool)
}

// Piecewise is a piecewise-constant function on [0, C]: value vs[i] on
// [xs[i], xs[i+1]). The last piece includes its right endpoint.
type Piecewise struct {
	xs []float64 // len n+1, strictly increasing, xs[0] == 0
	vs []float64 // len n, all >= 0
}

// NewPiecewise builds a piecewise-constant function from breakpoints and
// per-piece values. Requirements: len(xs) == len(vs)+1, xs strictly
// increasing, finite, xs[0] == 0, values non-negative and finite. All
// validation failures wrap guard.ErrInvalidInput.
func NewPiecewise(xs, vs []float64) (*Piecewise, error) {
	if len(xs) != len(vs)+1 {
		return nil, guard.Invalidf("delay: %d breakpoints need %d values, got %d", len(xs), len(xs)-1, len(vs))
	}
	if len(vs) == 0 {
		return nil, guard.Invalidf("delay: empty function")
	}
	if xs[0] != 0 {
		return nil, guard.Invalidf("delay: domain must start at 0, got %g", xs[0])
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, guard.Invalidf("delay: breakpoint %d is non-finite (%g)", i, x)
		}
		if i > 0 && !(x > xs[i-1]) {
			return nil, guard.Invalidf("delay: breakpoints not strictly increasing at %d", i)
		}
	}
	for i, v := range vs {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, guard.Invalidf("delay: piece %d has invalid value %g", i, v)
		}
	}
	return &Piecewise{xs: append([]float64(nil), xs...), vs: append([]float64(nil), vs...)}, nil
}

// NewConstant returns the constant function v on [0, c].
func NewConstant(v, c float64) (*Piecewise, error) {
	return NewPiecewise([]float64{0, c}, []float64{v})
}

// Constant returns the constant function v on [0, c]. It panics on invalid
// parameters, so it is for tests and fixtures ONLY; library code should use
// NewConstant and propagate the error.
func Constant(v, c float64) *Piecewise {
	p, err := NewPiecewise([]float64{0, c}, []float64{v})
	if err != nil {
		panic(err)
	}
	return p
}

// Domain implements Function.
func (p *Piecewise) Domain() float64 { return p.xs[len(p.xs)-1] }

// Pieces returns the number of constant pieces.
func (p *Piecewise) Pieces() int { return len(p.vs) }

// Breakpoints returns a copy of the breakpoint slice.
func (p *Piecewise) Breakpoints() []float64 { return append([]float64(nil), p.xs...) }

// Values returns a copy of the per-piece values.
func (p *Piecewise) Values() []float64 { return append([]float64(nil), p.vs...) }

// pieceAt returns the index of the piece containing t (clamped).
func (p *Piecewise) pieceAt(t float64) int {
	if t <= p.xs[0] {
		return 0
	}
	if t >= p.Domain() {
		return len(p.vs) - 1
	}
	// Find the first breakpoint > t; the piece is the one before it.
	i := sort.SearchFloat64s(p.xs, t)
	if i < len(p.xs) && p.xs[i] == t {
		return i // piece starting exactly at t
	}
	return i - 1
}

// Eval implements Function.
func (p *Piecewise) Eval(t float64) float64 {
	return p.vs[p.pieceAt(t)]
}

// Max returns the global maximum of the function and its earliest location.
func (p *Piecewise) Max() (tmax, fmax float64) {
	return p.MaxOn(0, p.Domain())
}

// MaxOn implements Function. Tie-break contract (pinned by tests and
// honored bit-for-bit by Indexed): when several pieces attain the maximum —
// a plateau of equal-valued adjacent pieces, or equal values separated by a
// dip — the earliest point wins. Concretely, the running maximum only
// updates on strictly greater values, so tmax is the query start a when the
// piece containing a attains the maximum, and otherwise the left breakpoint
// of the earliest attaining piece.
func (p *Piecewise) MaxOn(a, b float64) (tmax, fmax float64) {
	a, b = p.clampRange(a, b)
	i, j := p.pieceAt(a), p.pieceAt(b)
	tmax, fmax = a, p.vs[i]
	for k := i + 1; k <= j; k++ {
		if p.xs[k] > b {
			break
		}
		if p.vs[k] > fmax {
			fmax = p.vs[k]
			tmax = p.xs[k]
		}
	}
	return tmax, fmax
}

func (p *Piecewise) clampRange(a, b float64) (float64, float64) {
	d := p.Domain()
	a = math.Max(0, math.Min(a, d))
	b = math.Max(a, math.Min(b, d))
	return a, b
}

// FirstReachDescending implements Function: the smallest x in [a, b] with
// f(x) >= c - x. On a constant piece with value v the condition becomes
// x >= c - v, so the candidate within a piece is max(pieceStart, a, c-v).
func (p *Piecewise) FirstReachDescending(a, b, c float64) (float64, bool) {
	a, b = p.clampRange(a, b)
	i, j := p.pieceAt(a), p.pieceAt(b)
	for k := i; k <= j; k++ {
		if x, ok := p.reachInPiece(k, a, b, c); ok {
			return x, true
		}
	}
	return 0, false
}

// reachInPiece applies the descending-line crossing test to piece k of the
// (already clamped) query [a, b] against the line c - x, reporting the first
// crossing point inside the piece if there is one. Both the scan kernel
// (FirstReachDescending above) and the indexed kernel run this exact code on
// the same floats, so the two paths agree bit for bit.
func (p *Piecewise) reachInPiece(k int, a, b, c float64) (float64, bool) {
	lo := math.Max(p.xs[k], a)
	hi := math.Min(p.xs[k+1], b)
	// hi is inclusive when it is the query end strictly inside the
	// piece, or when this is the last piece (which owns its right
	// endpoint); otherwise the next piece owns the breakpoint.
	inclusive := b < p.xs[k+1] || k == len(p.vs)-1
	if lo > hi {
		return 0, false
	}
	// Candidate: the first point of this piece where v >= c - x,
	// i.e. x = max(lo, c-v). By construction the candidate
	// satisfies the crossing condition (x = lo implies c-v <= lo,
	// x = c-v is the equality point), so no value re-check is
	// needed — re-deriving v >= c-x in floating point can fail by
	// an ulp after the double rounding.
	x := c - p.vs[k]
	if x < lo {
		x = lo
	}
	if x < hi || (inclusive && x == hi) {
		return x, true
	}
	return 0, false
}

// Scale returns a copy with all values multiplied by k (k >= 0).
func (p *Piecewise) Scale(k float64) (*Piecewise, error) {
	if k < 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, guard.Invalidf("delay: invalid scale factor %g", k)
	}
	vs := make([]float64, len(p.vs))
	for i, v := range p.vs {
		vs[i] = v * k
	}
	return NewPiecewise(p.xs, vs)
}

// MaxWith returns the pointwise maximum of p and q, which must share the
// same domain length.
func (p *Piecewise) MaxWith(q *Piecewise) (*Piecewise, error) {
	if p.Domain() != q.Domain() {
		return nil, fmt.Errorf("delay: domain mismatch %g vs %g", p.Domain(), q.Domain())
	}
	xs := mergeBreakpoints(p.xs, q.xs)
	vs := make([]float64, len(xs)-1)
	for i := 0; i < len(vs); i++ {
		mid := (xs[i] + xs[i+1]) / 2
		vs[i] = math.Max(p.Eval(mid), q.Eval(mid))
	}
	return NewPiecewise(xs, vs)
}

func mergeBreakpoints(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Compact merges adjacent pieces with equal values.
func (p *Piecewise) Compact() *Piecewise {
	xs := []float64{p.xs[0]}
	var vs []float64
	for i := 0; i < len(p.vs); i++ {
		if len(vs) > 0 && vs[len(vs)-1] == p.vs[i] {
			xs[len(xs)-1] = p.xs[i+1]
			continue
		}
		vs = append(vs, p.vs[i])
		xs = append(xs, p.xs[i+1])
	}
	out, err := NewPiecewise(xs, vs)
	if err != nil {
		panic(err) // cannot happen: inputs came from a valid Piecewise
	}
	return out
}

// String renders the function compactly.
func (p *Piecewise) String() string {
	s := "f{"
	for i, v := range p.vs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%g,%g)=%g", p.xs[i], p.xs[i+1], v)
	}
	return s + "}"
}

// Plus returns the pointwise sum of p and q (same domain length required) —
// the composition rule when several state-carrying resources contribute
// delay independently (e.g. per-cache-level CRPD functions).
func (p *Piecewise) Plus(q *Piecewise) (*Piecewise, error) {
	if p.Domain() != q.Domain() {
		return nil, fmt.Errorf("delay: domain mismatch %g vs %g", p.Domain(), q.Domain())
	}
	xs := mergeBreakpoints(p.xs, q.xs)
	vs := make([]float64, len(xs)-1)
	for i := 0; i < len(vs); i++ {
		mid := (xs[i] + xs[i+1]) / 2
		vs[i] = p.Eval(mid) + q.Eval(mid)
	}
	return NewPiecewise(xs, vs)
}

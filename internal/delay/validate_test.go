package delay

import (
	"errors"
	"math"
	"testing"

	"fnpr/internal/guard"
)

// TestNewPiecewiseRejectsNonFinite checks that every malformed shape —
// non-finite breakpoints or values in particular — is rejected with an error
// wrapping guard.ErrInvalidInput rather than producing a poisoned function.
func TestNewPiecewiseRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		vs   []float64
	}{
		{"breakpoint-nan", []float64{0, nan, 10}, []float64{1, 2}},
		{"breakpoint-inf", []float64{0, 5, inf}, []float64{1, 2}},
		{"breakpoint-neg-inf", []float64{-inf, 5, 10}, []float64{1, 2}},
		{"value-nan", []float64{0, 5, 10}, []float64{1, nan}},
		{"value-inf", []float64{0, 5, 10}, []float64{inf, 2}},
		{"value-negative", []float64{0, 5, 10}, []float64{1, -2}},
		{"not-increasing", []float64{0, 5, 5}, []float64{1, 2}},
		{"decreasing", []float64{0, 7, 5}, []float64{1, 2}},
		{"length-mismatch", []float64{0, 5}, []float64{1, 2}},
		{"empty", []float64{0}, nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := NewPiecewise(c.xs, c.vs)
			if err == nil {
				t.Fatalf("NewPiecewise(%v, %v) accepted, got %v", c.xs, c.vs, p)
			}
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Fatalf("error %v does not wrap guard.ErrInvalidInput", err)
			}
		})
	}
}

// TestConstructorsRejectInvalid exercises the error-returning constructors
// the library must use in place of the panic-based fixtures.
func TestConstructorsRejectInvalid(t *testing.T) {
	cases := []struct {
		name string
		call func() (interface{}, error)
	}{
		{"constant-nan-value", func() (interface{}, error) { return NewConstant(math.NaN(), 5) }},
		{"constant-inf-domain", func() (interface{}, error) { return NewConstant(1, math.Inf(1)) }},
		{"constant-zero-domain", func() (interface{}, error) { return NewConstant(1, 0) }},
		{"step-no-pieces", func() (interface{}, error) { return NewStep(1, 2, 10, 0) }},
		{"frontloaded-nan-peak", func() (interface{}, error) { return NewFrontLoaded(math.NaN(), 1, 10) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			v, err := c.call()
			if err == nil {
				t.Fatalf("constructor accepted invalid input, got %v", v)
			}
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Fatalf("error %v does not wrap guard.ErrInvalidInput", err)
			}
		})
	}
	if p, err := NewConstant(2, 8); err != nil || p.Domain() != 8 || p.Eval(3) != 2 {
		t.Fatalf("NewConstant(2, 8) = %v, %v", p, err)
	}
}

package delay

import (
	"errors"
	"fmt"
	"math"
)

// PiecewiseLinear is a continuous piecewise-linear function on [0, C]:
// value ys[i] at breakpoint xs[i], linearly interpolated between
// breakpoints. It implements Function exactly (no sampling error), for
// delay models that are naturally linear — e.g. working sets loaded or
// drained at constant rate — where a piecewise-constant envelope would
// round every slope up to its maximum.
type PiecewiseLinear struct {
	xs, ys []float64 // both length n+1
}

// NewPiecewiseLinear builds the function. Requirements: len(xs) == len(ys)
// >= 2, xs strictly increasing starting at 0, ys non-negative and finite.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("delay: %d breakpoints for %d values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, errors.New("delay: need at least two points")
	}
	if xs[0] != 0 {
		return nil, fmt.Errorf("delay: domain must start at 0, got %g", xs[0])
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("delay: breakpoints not strictly increasing at %d", i)
		}
	}
	for i, v := range ys {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("delay: point %d has invalid value %g", i, v)
		}
	}
	return &PiecewiseLinear{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}, nil
}

// Domain implements Function.
func (p *PiecewiseLinear) Domain() float64 { return p.xs[len(p.xs)-1] }

// segmentAt returns the index i of the segment [xs[i], xs[i+1]] containing t
// (clamped).
func (p *PiecewiseLinear) segmentAt(t float64) int {
	if t <= 0 {
		return 0
	}
	n := len(p.xs) - 1
	if t >= p.xs[n] {
		return n - 1
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.xs[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Eval implements Function (clamping outside the domain).
func (p *PiecewiseLinear) Eval(t float64) float64 {
	if t <= 0 {
		return p.ys[0]
	}
	if d := p.Domain(); t >= d {
		return p.ys[len(p.ys)-1]
	}
	i := p.segmentAt(t)
	x0, x1 := p.xs[i], p.xs[i+1]
	y0, y1 := p.ys[i], p.ys[i+1]
	return y0 + (y1-y0)*(t-x0)/(x1-x0)
}

// MaxOn implements Function: a linear segment attains its maximum at an
// endpoint, so the candidates are the clipped range ends plus the interior
// breakpoints.
func (p *PiecewiseLinear) MaxOn(a, b float64) (tmax, fmax float64) {
	d := p.Domain()
	a = math.Max(0, math.Min(a, d))
	b = math.Max(a, math.Min(b, d))
	tmax, fmax = a, p.Eval(a)
	for i, x := range p.xs {
		if x > a && x < b && p.ys[i] > fmax {
			tmax, fmax = x, p.ys[i]
		}
	}
	if v := p.Eval(b); v > fmax {
		tmax, fmax = b, v
	}
	return tmax, fmax
}

// FirstReachDescending implements Function: the smallest x in [a, b] with
// f(x) >= c - x, i.e. g(x) = f(x) + x >= c. g is piecewise linear and its
// crossings are solvable in closed form per segment.
func (p *PiecewiseLinear) FirstReachDescending(a, b, c float64) (float64, bool) {
	d := p.Domain()
	a = math.Max(0, math.Min(a, d))
	b = math.Max(a, math.Min(b, d))
	g := func(x float64) float64 { return p.Eval(x) + x }
	if g(a) >= c {
		return a, true
	}
	i := p.segmentAt(a)
	for ; i < len(p.xs)-1; i++ {
		lo := math.Max(p.xs[i], a)
		hi := math.Min(p.xs[i+1], b)
		if lo >= hi {
			if p.xs[i] > b {
				break
			}
			continue
		}
		g0, g1 := g(lo), g(hi)
		if g0 >= c {
			return lo, true
		}
		if g1 >= c {
			// Linear crossing inside (lo, hi].
			x := lo + (c-g0)*(hi-lo)/(g1-g0)
			if x < lo {
				x = lo
			}
			if x > hi {
				x = hi
			}
			return x, true
		}
		if hi == b {
			break
		}
	}
	return 0, false
}

// ToPiecewise returns the exact piecewise-constant upper envelope with one
// piece per segment (a linear segment's maximum is at an endpoint, so the
// per-piece max is exact, not sampled). Useful to feed PWL models into
// consumers that require *Piecewise.
func (p *PiecewiseLinear) ToPiecewise() *Piecewise {
	n := len(p.xs) - 1
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		vs[i] = math.Max(p.ys[i], p.ys[i+1])
	}
	out, err := NewPiecewise(p.xs, vs)
	if err != nil {
		panic(err) // inputs validated at construction
	}
	return out
}

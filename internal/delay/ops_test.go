package delay

import (
	"math"
	"math/rand"
	"testing"
)

func TestSuffix(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20, 40}, []float64{1, 5, 2})
	s, err := p.Suffix(15)
	if err != nil {
		t.Fatal(err)
	}
	if s.Domain() != 25 {
		t.Fatalf("suffix domain = %g, want 25", s.Domain())
	}
	if s.Eval(0) != 5 { // f(15) = 5
		t.Fatalf("suffix(0) = %g, want 5", s.Eval(0))
	}
	if s.Eval(10) != 2 { // f(25) = 2
		t.Fatalf("suffix(10) = %g, want 2", s.Eval(10))
	}
	if _, err := p.Suffix(-1); err == nil {
		t.Fatal("accepted negative start")
	}
	if _, err := p.Suffix(40); err == nil {
		t.Fatal("accepted start at domain end")
	}
}

func TestSuffixPointwiseMatches(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := randomPW(r)
		from := r.Float64() * p.Domain() * 0.9
		s, err := p.Suffix(from)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			x := r.Float64() * s.Domain()
			// Piece-boundary alignment can differ exactly at
			// breakpoints; probe strictly inside.
			if got, want := s.Eval(x), p.Eval(from+x); got != want {
				onBoundary := false
				for _, bp := range p.Breakpoints() {
					if math.Abs(bp-(from+x)) < 1e-12 {
						onBoundary = true
					}
				}
				if !onBoundary {
					t.Fatalf("suffix(%g) = %g, f(%g) = %g", x, got, from+x, want)
				}
			}
		}
	}
}

func TestIntegralAndMean(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20}, []float64{2, 4})
	if got := p.Integral(0, 20); got != 60 {
		t.Fatalf("integral = %g, want 60", got)
	}
	if got := p.Integral(5, 15); got != 30 { // 5*2 + 5*4
		t.Fatalf("integral(5,15) = %g, want 30", got)
	}
	if got := p.Integral(15, 5); got != 0 {
		t.Fatalf("inverted integral = %g, want 0", got)
	}
	if got := p.Mean(); got != 3 {
		t.Fatalf("mean = %g, want 3", got)
	}
}

func TestCoarsenDominates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := randomPW(r)
		n := 1 + r.Intn(4)
		c, err := p.Coarsen(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Pieces() > n && c != p {
			t.Fatalf("coarsened to %d pieces, want <= %d", c.Pieces(), n)
		}
		for i := 0; i < 50; i++ {
			x := r.Float64() * p.Domain()
			if c.Eval(x) < p.Eval(x)-1e-12 {
				t.Fatalf("coarsened function below original at %g: %g < %g", x, c.Eval(x), p.Eval(x))
			}
		}
	}
}

func TestCoarsenIdentityWhenSmall(t *testing.T) {
	p := mustPW(t, []float64{0, 10}, []float64{1})
	c, err := p.Coarsen(5)
	if err != nil {
		t.Fatal(err)
	}
	if c != p {
		t.Fatal("coarsening a smaller function should return it unchanged")
	}
	if _, err := p.Coarsen(0); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestFromSamples(t *testing.T) {
	f, err := FromSamples([]float64{0, 10, 20}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Eval(5) != 3 { // max(1,3)
		t.Fatalf("f(5) = %g, want 3", f.Eval(5))
	}
	if f.Eval(15) != 3 { // max(3,2)
		t.Fatalf("f(15) = %g, want 3", f.Eval(15))
	}
	for _, bad := range []struct {
		ts, vs []float64
	}{
		{[]float64{0, 1}, []float64{1}},
		{[]float64{0}, []float64{1}},
		{[]float64{1, 2}, []float64{1, 2}},
		{[]float64{0, 0}, []float64{1, 2}},
	} {
		if _, err := FromSamples(bad.ts, bad.vs); err == nil {
			t.Errorf("accepted bad samples %v", bad.ts)
		}
	}
}

func TestParseCompact(t *testing.T) {
	p, err := ParseCompact("0:5=2,5:20=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Domain() != 20 || p.Eval(1) != 2 || p.Eval(10) != 0.5 {
		t.Fatalf("parsed function wrong: %v", p)
	}
	for _, bad := range []string{
		"", "0:5", "0:5=x", "x:5=1", "0:x=1", "0:5=1,6:10=1", "1:5=2",
		"0:5=-1", "0:0=1",
	} {
		if _, err := ParseCompact(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

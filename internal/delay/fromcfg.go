package delay

import (
	"errors"
	"fmt"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
)

// FromCFG builds the preemption delay function of Section IV:
//
//	fi(t) = max_{b in BB(t)} CRPD_b
//
// from the offset analysis of a (loop-collapsed) control-flow graph and a
// per-block CRPD bound. The result is piecewise constant with breakpoints at
// the block-window boundaries, defined on [0, WCET].
func FromCFG(off *cfg.Offsets, crpd map[cfg.BlockID]float64) (*Piecewise, error) {
	if off == nil {
		return nil, errors.New("delay: nil offsets")
	}
	g := off.Graph()
	for id := 0; id < g.Len(); id++ {
		if c, ok := crpd[cfg.BlockID(id)]; ok && c < 0 {
			return nil, fmt.Errorf("delay: negative CRPD %g for block %d", c, id)
		}
	}
	bounds := off.Boundaries()
	// The function's domain is [0, WCET]; window boundaries beyond WCET
	// (from the conservative smax+emax of non-final blocks) are clipped.
	xs := []float64{0}
	for _, b := range bounds {
		if b > 0 && b < off.WCET {
			xs = append(xs, b)
		}
	}
	xs = append(xs, off.WCET)
	vs := make([]float64, len(xs)-1)
	for i := 0; i < len(vs); i++ {
		mid := (xs[i] + xs[i+1]) / 2
		var v float64
		for _, b := range off.BB(mid) {
			if c := crpd[b]; c > v {
				v = c
			}
		}
		vs[i] = v
	}
	p, err := NewPiecewise(xs, vs)
	if err != nil {
		return nil, err
	}
	return p.Compact(), nil
}

// FromUCB is the end-to-end pipeline of Section IV: given the offsets of a
// loop-collapsed graph and the UCB analysis run on that same graph, build
// fi(t) using the UCB-only CRPD bound per block.
func FromUCB(off *cfg.Offsets, ucb *cache.UCBResult) (*Piecewise, error) {
	g := off.Graph()
	crpd := make(map[cfg.BlockID]float64, g.Len())
	for id := 0; id < g.Len(); id++ {
		crpd[cfg.BlockID(id)] = ucb.CRPD(cfg.BlockID(id))
	}
	return FromCFG(off, crpd)
}

// FromUCBAgainst builds fi(t) with the preempting workload's evicting cache
// blocks taken into account (only sets the preempters may touch can lose
// useful blocks).
func FromUCBAgainst(off *cfg.Offsets, ucb *cache.UCBResult, ecb cache.LineSet) (*Piecewise, error) {
	g := off.Graph()
	crpd := make(map[cfg.BlockID]float64, g.Len())
	for id := 0; id < g.Len(); id++ {
		crpd[cfg.BlockID(id)] = ucb.CRPDAgainst(cfg.BlockID(id), ecb)
	}
	return FromCFG(off, crpd)
}

// RemapCRPD lifts per-original-block CRPD bounds onto a collapsed graph:
// a collapsed loop node inherits the maximum CRPD of the blocks it covers,
// which keeps fi conservative after loop collapsing.
func RemapCRPD(col *cfg.Collapsed, orig map[cfg.BlockID]float64) map[cfg.BlockID]float64 {
	out := make(map[cfg.BlockID]float64, col.Graph.Len())
	for id := 0; id < col.Graph.Len(); id++ {
		var v float64
		for _, o := range col.Origins[cfg.BlockID(id)] {
			if c := orig[o]; c > v {
				v = c
			}
		}
		out[cfg.BlockID(id)] = v
	}
	return out
}

// FromProgram builds the delay function of a whole program (root function
// plus callees) from per-function, per-block CRPD bounds: a block that calls
// a function inherits the worst CRPD of the callee's blocks — a preemption
// may strike while the callee runs on the caller's behalf — computed
// bottom-up over the acyclic call graph, then laid out over the root's
// collapsed execution windows.
func FromProgram(p *cfg.Program, res *cfg.ProgramResult, crpd map[string]map[cfg.BlockID]float64) (*Piecewise, error) {
	if p == nil || res == nil || res.Root == nil || res.RootCollapsed == nil {
		return nil, errors.New("delay: incomplete program analysis")
	}
	order, err := p.CallOrder()
	if err != nil {
		return nil, err
	}
	// funcMax[name] = worst effective CRPD anywhere inside the function,
	// including its callees.
	funcMax := make(map[string]float64, len(order))
	// effective[name][block] = block CRPD including callee inheritance.
	effective := make(map[string]map[cfg.BlockID]float64, len(order))
	for _, name := range order {
		g := p.Func(name)
		if g == nil {
			return nil, fmt.Errorf("delay: function %q missing from program", name)
		}
		eff := make(map[cfg.BlockID]float64, g.Len())
		var max float64
		for id := 0; id < g.Len(); id++ {
			b := cfg.BlockID(id)
			v := crpd[name][b]
			if callee := g.Block(b).Call; callee != "" {
				if cm, ok := funcMax[callee]; ok && cm > v {
					v = cm
				}
			}
			eff[b] = v
			if v > max {
				max = v
			}
		}
		effective[name] = eff
		funcMax[name] = max
	}
	rootEff := RemapCRPD(res.RootCollapsed, effective[p.Root()])
	return FromCFG(res.Root, rootEff)
}

package delay

import (
	"math/rand"
	"testing"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
)

func TestFromCFGFigure1(t *testing.T) {
	g := cfg.Figure1()
	off, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	// Give each block a distinct CRPD equal to its ID.
	crpd := make(map[cfg.BlockID]float64)
	for id := 0; id < g.Len(); id++ {
		crpd[cfg.BlockID(id)] = float64(id)
	}
	f, err := FromCFG(off, crpd)
	if err != nil {
		t.Fatal(err)
	}
	if f.Domain() != off.WCET {
		t.Fatalf("domain = %g, want WCET %g", f.Domain(), off.WCET)
	}
	// At t=5, only block 0 is live: f = 0.
	if v := f.Eval(5); v != 0 {
		t.Fatalf("f(5) = %g, want 0 (only entry live)", v)
	}
	// f(t) must equal max CRPD over BB(t) at any sampled point.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		tt := r.Float64() * off.WCET
		var want float64
		for _, b := range off.BB(tt) {
			if crpd[b] > want {
				want = crpd[b]
			}
		}
		if got := f.Eval(tt); got != want {
			// Points exactly on window boundaries may differ by
			// piece convention; skip boundary hits.
			onBoundary := false
			for _, bp := range off.Boundaries() {
				if tt == bp {
					onBoundary = true
				}
			}
			if !onBoundary {
				t.Fatalf("f(%g) = %g, want %g (BB=%v)", tt, got, want, off.BB(tt))
			}
		}
	}
}

func TestFromCFGNegativeCRPD(t *testing.T) {
	g := cfg.Figure1()
	off, _ := g.AnalyzeOffsets()
	if _, err := FromCFG(off, map[cfg.BlockID]float64{0: -1}); err == nil {
		t.Fatal("FromCFG accepted negative CRPD")
	}
	if _, err := FromCFG(nil, nil); err == nil {
		t.Fatal("FromCFG accepted nil offsets")
	}
}

func TestFromCFGMissingCRPDDefaultsZero(t *testing.T) {
	g := cfg.Figure1()
	off, _ := g.AnalyzeOffsets()
	f, err := FromCFG(off, map[cfg.BlockID]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if _, fm := f.Max(); fm != 0 {
		t.Fatalf("empty CRPD map should give zero function, max = %g", fm)
	}
}

// TestFromUCBPipeline exercises the whole Section IV pipeline: CFG with
// accesses -> UCB analysis -> offsets -> fi(t).
func TestFromUCBPipeline(t *testing.T) {
	// Three-block chain: load working set, compute, reuse a subset.
	g := cfg.New()
	load := g.AddSimple("load", 10, 10)
	compute := g.AddSimple("compute", 50, 60)
	reuse := g.AddSimple("reuse", 10, 15)
	g.MustEdge(load, compute)
	g.MustEdge(compute, reuse)

	cc := cache.Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 2}
	acc := cache.AccessMap{
		load:    {0, 1, 2, 3},
		compute: {},
		reuse:   {2, 3},
	}
	ucb, err := cache.AnalyzeUCB(g, acc, cc)
	if err != nil {
		t.Fatal(err)
	}
	off, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromUCB(off, ucb)
	if err != nil {
		t.Fatal(err)
	}
	// During compute (say t=30), lines 2,3 are useful: delay = 2 lines x 2.
	if v := f.Eval(30); v != 4 {
		t.Fatalf("f(30) = %g, want 4", v)
	}
	// Domain is the WCET.
	if f.Domain() != 85 {
		t.Fatalf("domain = %g, want 85", f.Domain())
	}
}

func TestFromUCBAgainstReducesDelay(t *testing.T) {
	g := cfg.New()
	a := g.AddSimple("a", 10, 10)
	b := g.AddSimple("b", 10, 10)
	g.MustEdge(a, b)
	cc := cache.Config{Sets: 4, Assoc: 1, LineBytes: 16, ReloadCost: 1}
	acc := cache.AccessMap{a: {0, 1, 2, 3}, b: {0, 1, 2, 3}}
	ucb, _ := cache.AnalyzeUCB(g, acc, cc)
	off, _ := g.AnalyzeOffsets()

	full, _ := FromUCB(off, ucb)
	// Preempter touching only set 0.
	narrow, err := FromUCBAgainst(off, ucb, cache.NewLineSet(4))
	if err != nil {
		t.Fatal(err)
	}
	_, fullMax := full.Max()
	_, narrowMax := narrow.Max()
	if narrowMax >= fullMax {
		t.Fatalf("ECB-refined max %g not below UCB-only max %g", narrowMax, fullMax)
	}
	if narrowMax != 1 {
		t.Fatalf("narrow max = %g, want 1", narrowMax)
	}
}

func TestRemapCRPDTakesMaxOverOrigins(t *testing.T) {
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 3})
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	orig := map[cfg.BlockID]float64{
		0: 1, // entry
		1: 5, // header
		2: 9, // body
		3: 2, // exit
	}
	m := RemapCRPD(col, orig)
	// Find the loop node (origins > 1) and check it got max(5, 9) = 9.
	found := false
	for id := 0; id < col.Graph.Len(); id++ {
		if len(col.Origins[cfg.BlockID(id)]) > 1 {
			found = true
			if m[cfg.BlockID(id)] != 9 {
				t.Fatalf("loop node CRPD = %g, want 9", m[cfg.BlockID(id)])
			}
		}
	}
	if !found {
		t.Fatal("no loop node in collapsed graph")
	}
}

func TestRemapAccessesConcatenates(t *testing.T) {
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 3})
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	orig := cache.AccessMap{
		1: {10, 11}, // header
		2: {12},     // body
	}
	m := cache.RemapAccesses(col, orig)
	for id := 0; id < col.Graph.Len(); id++ {
		if len(col.Origins[cfg.BlockID(id)]) > 1 {
			if got := len(m[cfg.BlockID(id)]); got != 3 {
				t.Fatalf("loop node trace has %d accesses, want 3", got)
			}
		}
	}
}

func TestFromProgramInheritsCalleeCRPD(t *testing.T) {
	// leaf has an expensive block; main's calling block itself is cheap
	// but must inherit the callee's worst CRPD.
	leaf := cfg.New()
	la := leaf.AddSimple("la", 1, 1)
	lb := leaf.AddSimple("lb", 3, 3)
	leaf.MustEdge(la, lb)

	main := cfg.New()
	entry := main.AddSimple("entry", 2, 2)
	call := main.AddBlock(cfg.Block{Name: "call", EMin: 1, EMax: 1, Call: "leaf"})
	exit := main.AddSimple("exit", 2, 2)
	main.MustEdge(entry, call)
	main.MustEdge(call, exit)

	p := cfg.NewProgram("main")
	if err := p.AddFunc("main", main); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc("leaf", leaf); err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	crpd := map[string]map[cfg.BlockID]float64{
		"main": {entry: 1, call: 0.5, exit: 0.2},
		"leaf": {la: 2, lb: 7},
	}
	f, err := FromProgram(p, res, crpd)
	if err != nil {
		t.Fatal(err)
	}
	// main's WCET: entry 2 + call (1 + leaf 4) + exit 2 = 9.
	if f.Domain() != 9 {
		t.Fatalf("domain = %g, want 9", f.Domain())
	}
	// Mid-execution (inside the call window) the delay is the callee's
	// worst CRPD 7.
	if v := f.Eval(4); v != 7 {
		t.Fatalf("f(4) = %g, want 7 (inherited from leaf)", v)
	}
	// The global max is the inherited 7, not main's own 1.
	if _, fm := f.Max(); fm != 7 {
		t.Fatalf("max = %g, want 7", fm)
	}
}

func TestFromProgramValidation(t *testing.T) {
	if _, err := FromProgram(nil, nil, nil); err == nil {
		t.Fatal("accepted nil inputs")
	}
}

package delay

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Suffix returns the delay function of the task's remaining execution after
// progression p: g(t) = f(p + t) on [0, C-p]. This is the natural hook for
// post-preemption analysis — the paper notes fi is only valid for the first
// preemption; re-running Algorithm 1 on the suffix from the observed
// progression refines the remaining-job bound at run time.
func (p *Piecewise) Suffix(from float64) (*Piecewise, error) {
	c := p.Domain()
	if from < 0 || from >= c {
		return nil, fmt.Errorf("delay: suffix start %g outside [0, %g)", from, c)
	}
	xs := []float64{0}
	var vs []float64
	for i := 0; i < len(p.vs); i++ {
		hi := p.xs[i+1]
		if hi <= from {
			continue
		}
		vs = append(vs, p.vs[i])
		xs = append(xs, hi-from)
	}
	return NewPiecewise(xs, vs)
}

// Integral returns the integral of f over [a, b] (clamped to the domain),
// useful for average-delay statistics in experiment reports.
func (p *Piecewise) Integral(a, b float64) float64 {
	a, b = p.clampRange(a, b)
	if b <= a {
		return 0
	}
	var sum float64
	for i := 0; i < len(p.vs); i++ {
		lo := math.Max(p.xs[i], a)
		hi := math.Min(p.xs[i+1], b)
		if hi > lo {
			sum += p.vs[i] * (hi - lo)
		}
	}
	return sum
}

// Mean returns the average value of f over its whole domain.
func (p *Piecewise) Mean() float64 {
	return p.Integral(0, p.Domain()) / p.Domain()
}

// Coarsen returns a conservative approximation with at most n pieces: the
// domain is split into n equal spans and each span takes the maximum of f
// over it. The result dominates f pointwise, so any bound computed on it is
// sound for f — useful to trade precision for speed on very dense envelopes.
func (p *Piecewise) Coarsen(n int) (*Piecewise, error) {
	if n < 1 {
		return nil, errors.New("delay: need at least one piece")
	}
	if n >= p.Pieces() {
		return p, nil
	}
	c := p.Domain()
	xs := make([]float64, n+1)
	vs := make([]float64, n)
	for i := 0; i <= n; i++ {
		xs[i] = c * float64(i) / float64(n)
	}
	for i := 0; i < n; i++ {
		_, vs[i] = p.MaxOn(xs[i], xs[i+1])
	}
	return NewPiecewise(xs, vs)
}

// FromSamples builds a conservative piecewise function from measured
// (time, delay) samples: each inter-sample span takes the maximum of its two
// endpoint samples, so the result dominates any function that interpolates
// the measurements monotonically between samples. Times must be strictly
// increasing, start at 0 and end at c.
func FromSamples(ts, vs []float64) (*Piecewise, error) {
	if len(ts) != len(vs) {
		return nil, fmt.Errorf("delay: %d times for %d values", len(ts), len(vs))
	}
	if len(ts) < 2 {
		return nil, errors.New("delay: need at least two samples")
	}
	if ts[0] != 0 {
		return nil, fmt.Errorf("delay: samples must start at 0, got %g", ts[0])
	}
	out := make([]float64, len(ts)-1)
	for i := 0; i < len(out); i++ {
		if !(ts[i+1] > ts[i]) {
			return nil, fmt.Errorf("delay: sample times not strictly increasing at %d", i+1)
		}
		out[i] = math.Max(vs[i], vs[i+1])
	}
	return NewPiecewise(ts, out)
}

// ParseCompact parses the compact textual form "a:b=v,b:c=v" (value v on
// [a,b), then on [b,c), ...) used by the command-line tools: ranges must be
// contiguous, start at 0 and carry non-negative values.
func ParseCompact(s string) (*Piecewise, error) {
	var xs, vs []float64
	for i, piece := range strings.Split(s, ",") {
		parts := strings.SplitN(piece, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("delay: piece %d: missing '=' in %q", i, piece)
		}
		rng := strings.SplitN(parts[0], ":", 2)
		if len(rng) != 2 {
			return nil, fmt.Errorf("delay: piece %d: range %q needs lo:hi", i, parts[0])
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(rng[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("delay: piece %d: bad lower bound: %w", i, err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(rng[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("delay: piece %d: bad upper bound: %w", i, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("delay: piece %d: bad value: %w", i, err)
		}
		if len(xs) == 0 {
			xs = append(xs, lo)
		} else if xs[len(xs)-1] != lo {
			return nil, fmt.Errorf("delay: piece %d starts at %g, previous ended at %g", i, lo, xs[len(xs)-1])
		}
		xs = append(xs, hi)
		vs = append(vs, v)
	}
	return NewPiecewise(xs, vs)
}

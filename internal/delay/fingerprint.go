package delay

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// This file defines the canonical content fingerprint of a delay function —
// the identity the result cache (internal/memo, wired through core.Analyze)
// and every other content-addressed consumer key on. The contract, pinned by
// FuzzFingerprintCanonical and the unit tests:
//
//   - Canonical: semantically identical functions hash equal regardless of
//     how they were constructed. A Piecewise built in one go, one assembled
//     from redundantly split pieces (adjacent pieces with equal values), and
//     the Indexed view of either all share one fingerprint; likewise a
//     PiecewiseLinear with redundant collinear interior points.
//   - Exact on float bits: the hash covers the IEEE-754 bit patterns of the
//     canonical breakpoints and values, so any single mutated bit — an
//     ulp-adjacent breakpoint, a value off by one mantissa bit — yields a
//     different fingerprint. No epsilon ever enters the identity.
//   - Domain-separated by representation family: piecewise-constant and
//     piecewise-linear functions never collide structurally, because the
//     encoding leads with a family tag and the piece count.
//
// The fingerprint is truncated SHA-256 (16 bytes — the same width
// eval.Campaign.Fingerprint uses), so fingerprint equality is trustworthy
// but consumers that fold it into shorter keys must verify on use
// (internal/memo stores the full fingerprint beside every entry and treats a
// mismatch as a miss, never as a hit).

// FingerprintSize is the byte width of a Fingerprint.
const FingerprintSize = 16

// Fingerprint is the canonical content hash of a delay function.
type Fingerprint [FingerprintSize]byte

// String renders the fingerprint as lower-case hex — the spelling journal
// records and job manifests store.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:]) }

// IsZero reports whether fp is the zero value (no fingerprint).
func (fp Fingerprint) IsZero() bool { return fp == Fingerprint{} }

// Fingerprinter is implemented by Function values that can produce (and
// possibly cache) their own canonical fingerprint. FingerprintOf consults it
// before falling back to the structural encodings it knows.
type Fingerprinter interface {
	Fingerprint() (Fingerprint, error)
}

// FingerprintOf computes the canonical fingerprint of f. Functions outside
// the canonical families (fault-injection wrappers, ad-hoc test doubles)
// return an error — the result cache treats those as unkeyable and simply
// analyzes them uncached, which is always sound.
func FingerprintOf(f Function) (Fingerprint, error) {
	switch v := f.(type) {
	case Fingerprinter:
		return v.Fingerprint()
	case *Piecewise:
		return v.fingerprint(), nil
	case *PiecewiseLinear:
		return v.fingerprint(), nil
	default:
		return Fingerprint{}, fmt.Errorf("delay: %T is not fingerprintable", f)
	}
}

// familyPiecewise / familyLinear are the domain-separation tags; they are
// part of the stable hash input and must never change.
const (
	familyPiecewise = "fnpr-delay/piecewise/v1\n"
	familyLinear    = "fnpr-delay/linear/v1\n"
)

// fingerprint hashes the canonical (compacted) form of p: adjacent pieces
// with bit-equal values merge, so every construction of the same step
// function lands on the same bytes. Runs in O(pieces) with no allocation
// beyond the hash state.
func (p *Piecewise) fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	write := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], floatBits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(familyPiecewise))
	// Canonical pieces: emit a (start, value) pair only where the value
	// changes, then the final breakpoint — exactly Compact() without
	// building it.
	n := 0
	for i := range p.vs {
		if i > 0 && floatBits(p.vs[i]) == floatBits(p.vs[i-1]) {
			continue
		}
		n++
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	for i := range p.vs {
		if i > 0 && floatBits(p.vs[i]) == floatBits(p.vs[i-1]) {
			continue
		}
		write(p.xs[i])
		write(p.vs[i])
	}
	write(p.Domain())
	var fp Fingerprint
	copy(fp[:], h.Sum(nil))
	return fp
}

// fingerprint hashes the canonical form of a piecewise-linear function:
// interior points that lie bit-exactly on the segment through their
// neighbours (equal slopes on both sides, compared on float bits) are
// redundant and dropped, so splitting a segment at a representable midpoint
// does not change the identity.
func (p *PiecewiseLinear) fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	write := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], floatBits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(familyLinear))
	keep := p.canonicalPoints()
	binary.LittleEndian.PutUint64(buf[:], uint64(len(keep)))
	h.Write(buf[:])
	for _, i := range keep {
		write(p.xs[i])
		write(p.ys[i])
	}
	var fp Fingerprint
	copy(fp[:], h.Sum(nil))
	return fp
}

// canonicalPoints returns the indices of the non-redundant breakpoints: the
// endpoints always, plus every interior point whose removal would change the
// function. An interior point is redundant when interpolating its neighbours
// at its x reproduces its y bit-exactly.
func (p *PiecewiseLinear) canonicalPoints() []int {
	keep := []int{0}
	for i := 1; i < len(p.xs)-1; i++ {
		a := keep[len(keep)-1]
		x0, y0 := p.xs[a], p.ys[a]
		x1, y1 := p.xs[i+1], p.ys[i+1]
		interp := y0 + (p.xs[i]-x0)/(x1-x0)*(y1-y0)
		if floatBits(interp) == floatBits(p.ys[i]) {
			continue
		}
		keep = append(keep, i)
	}
	return append(keep, len(p.xs)-1)
}

// floatBits is the identity the hash sees: raw IEEE-754 bits, so -0 and +0
// are distinct and every NaN payload is itself. Inputs are validated finite
// at construction, so neither case arises from the public constructors.
func floatBits(v float64) uint64 { return math.Float64bits(v) }

// Fingerprint implements Fingerprinter on the indexed view: the identity is
// the underlying function's, computed once and cached — sweeps share one
// Indexed across a whole Q grid, so the per-point fingerprint cost of a
// memoized analysis amortizes to a single hash per function.
func (ix *Indexed) Fingerprint() (Fingerprint, error) {
	ix.fpOnce.Do(func() { ix.fp = ix.p.fingerprint() })
	return ix.fp, nil
}

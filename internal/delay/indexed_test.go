package delay

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file is the differential harness for the indexed query kernel: a
// quickcheck-style generator of random valid Piecewise functions, a naive
// reference implementation of every Function query written as an
// obviously-correct linear scan over (breakpoints, values) copies, and a
// driver asserting that the scan kernel (Piecewise), the indexed kernel
// (Indexed) and the naive reference agree bit for bit across ~10k random
// (f, a, b, c) queries — including breakpoint-exact and ulp-adjacent
// endpoints, the territory where a rearranged floating-point expression
// would diverge by one ulp and break the byte-identical-output guarantee.

// --- naive reference implementations -----------------------------------

// naiveRef holds plain copies of a function's representation so the
// reference implementations cannot accidentally share code (or bugs) with
// the production kernels.
type naiveRef struct {
	xs []float64
	vs []float64
}

func newNaiveRef(p *Piecewise) naiveRef {
	return naiveRef{xs: p.Breakpoints(), vs: p.Values()}
}

func (n naiveRef) domain() float64 { return n.xs[len(n.xs)-1] }

// clamp mirrors the documented query clamping: a into [0, C], b into [a, C].
func (n naiveRef) clamp(a, b float64) (float64, float64) {
	d := n.domain()
	a = math.Max(0, math.Min(a, d))
	b = math.Max(a, math.Min(b, d))
	return a, b
}

// eval: linear scan for the piece containing t. A breakpoint belongs to the
// piece starting at it; arguments outside the domain are clamped.
func (n naiveRef) eval(t float64) float64 {
	if t <= n.xs[0] {
		return n.vs[0]
	}
	if t >= n.domain() {
		return n.vs[len(n.vs)-1]
	}
	for k := len(n.vs) - 1; k >= 0; k-- {
		if t >= n.xs[k] {
			return n.vs[k]
		}
	}
	return n.vs[0]
}

// maxOn: the maximum of f over [a, b] with the earliest point attaining it.
// The candidate points are the query start a and every piece start inside
// (a, b]; a strictly-greater update keeps the earliest maximizer.
func (n naiveRef) maxOn(a, b float64) (float64, float64) {
	a, b = n.clamp(a, b)
	tmax, fmax := a, n.eval(a)
	for k := 0; k < len(n.vs); k++ {
		if n.xs[k] > a && n.xs[k] <= b && n.vs[k] > fmax {
			tmax, fmax = n.xs[k], n.vs[k]
		}
	}
	return tmax, fmax
}

// firstReach: the smallest x in [a, b] with f(x) >= c - x, walking every
// piece in order. On a constant piece with value v the condition is
// x >= c - v, so the first candidate is max(pieceStart, a, c-v); the piece's
// right end is inclusive only when it is the query end strictly inside the
// piece or the domain end.
func (n naiveRef) firstReach(a, b, c float64) (float64, bool) {
	a, b = n.clamp(a, b)
	for k := 0; k < len(n.vs); k++ {
		lo := math.Max(n.xs[k], a)
		hi := math.Min(n.xs[k+1], b)
		if lo > hi {
			continue
		}
		inclusive := b < n.xs[k+1] || k == len(n.vs)-1
		x := c - n.vs[k]
		if x < lo {
			x = lo
		}
		if x < hi || (inclusive && x == hi) {
			return x, true
		}
	}
	return 0, false
}

// --- generators ---------------------------------------------------------

// randomPiecewise builds a random valid function with adversarial structure:
// plateaus (equal-valued adjacent pieces), zero-valued pieces, near-equal
// values one ulp apart, and occasional very narrow pieces.
func randomPiecewise(r *rand.Rand) *Piecewise {
	n := 1 + r.Intn(48)
	xs := make([]float64, 0, n+1)
	xs = append(xs, 0)
	x := 0.0
	for i := 0; i < n; i++ {
		var step float64
		switch r.Intn(4) {
		case 0: // narrow piece
			step = math.Nextafter(0, 1) + r.Float64()*1e-9
		case 1: // unit-ish piece
			step = 0.25 + r.Float64()
		default: // broad piece
			step = r.Float64() * 25
		}
		if step <= 0 {
			step = 1e-12
		}
		next := x + step
		if next <= x { // increment lost to rounding: force the next float
			next = math.Nextafter(x, math.Inf(1))
		}
		x = next
		xs = append(xs, x)
	}
	vs := make([]float64, n)
	for i := range vs {
		switch r.Intn(6) {
		case 0:
			vs[i] = 0
		case 1: // plateau: repeat the previous value
			if i > 0 {
				vs[i] = vs[i-1]
			} else {
				vs[i] = r.Float64() * 10
			}
		case 2: // one ulp off the previous value
			if i > 0 {
				vs[i] = math.Nextafter(vs[i-1], math.Inf(1))
			} else {
				vs[i] = r.Float64()
			}
		default:
			vs[i] = r.Float64() * 12
		}
	}
	p, err := NewPiecewise(xs, vs)
	if err != nil {
		panic(fmt.Sprintf("generator produced invalid function: %v", err))
	}
	return p
}

// randomEndpoint picks a query endpoint: uniform over an extended domain
// (exercising the clamp paths), an exact breakpoint, or a point one ulp to
// either side of a breakpoint.
func randomEndpoint(r *rand.Rand, p *Piecewise) float64 {
	xs := p.Breakpoints()
	d := p.Domain()
	switch r.Intn(5) {
	case 0:
		return xs[r.Intn(len(xs))]
	case 1:
		return math.Nextafter(xs[r.Intn(len(xs))], math.Inf(1))
	case 2:
		return math.Nextafter(xs[r.Intn(len(xs))], math.Inf(-1))
	default:
		return -0.2*d + r.Float64()*1.4*d
	}
}

// randomLine picks the c of a FirstReachDescending query: random over a wide
// range, or exactly (and one ulp off) a piece's v + rightBreakpoint — the
// tangency values where the crossing test is decided by a single rounding.
func randomLine(r *rand.Rand, p *Piecewise) float64 {
	xs, vs := p.Breakpoints(), p.Values()
	k := r.Intn(len(vs))
	s := vs[k] + xs[k+1]
	switch r.Intn(6) {
	case 0:
		return s
	case 1:
		return math.Nextafter(s, math.Inf(1))
	case 2:
		return math.Nextafter(s, math.Inf(-1))
	case 3:
		return vs[k] + xs[k] // tangent at the piece start
	default:
		d := p.Domain()
		return -d + r.Float64()*3*(p.maxValue()+d)
	}
}

func (p *Piecewise) maxValue() float64 {
	m := 0.0
	for _, v := range p.vs {
		if v > m {
			m = v
		}
	}
	return m
}

// --- the differential driver -------------------------------------------

// TestDifferentialKernels asserts bit-for-bit agreement of naive, scan and
// indexed kernels on ~10k random queries over ~150 random functions.
func TestDifferentialKernels(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	const functions = 150
	const queriesPerFunction = 70
	queries := 0
	for fi := 0; fi < functions; fi++ {
		p := randomPiecewise(r)
		ix := NewIndexed(p)
		ref := newNaiveRef(p)
		for qi := 0; qi < queriesPerFunction; qi++ {
			a := randomEndpoint(r, p)
			b := randomEndpoint(r, p)
			if r.Intn(8) != 0 && b < a { // mostly ordered, sometimes inverted (clamp path)
				a, b = b, a
			}
			c := randomLine(r, p)
			queries++

			et := randomEndpoint(r, p)
			want := ref.eval(et)
			if got := p.Eval(et); got != want {
				t.Fatalf("f#%d Eval(%v): scan %v, naive %v\nf=%v", fi, et, got, want, p)
			}
			if got := ix.Eval(et); got != want {
				t.Fatalf("f#%d Eval(%v): indexed %v, naive %v\nf=%v", fi, et, got, want, p)
			}

			nt, nv := ref.maxOn(a, b)
			st, sv := p.MaxOn(a, b)
			it, iv := ix.MaxOn(a, b)
			if st != nt || sv != nv {
				t.Fatalf("f#%d MaxOn(%v, %v): scan (%v, %v), naive (%v, %v)\nf=%v", fi, a, b, st, sv, nt, nv, p)
			}
			if it != nt || iv != nv {
				t.Fatalf("f#%d MaxOn(%v, %v): indexed (%v, %v), naive (%v, %v)\nf=%v", fi, a, b, it, iv, nt, nv, p)
			}

			nx, nok := ref.firstReach(a, b, c)
			sx, sok := p.FirstReachDescending(a, b, c)
			ixx, iok := ix.FirstReachDescending(a, b, c)
			if sok != nok || (nok && sx != nx) {
				t.Fatalf("f#%d FirstReach(%v, %v, %v): scan (%v, %v), naive (%v, %v)\nf=%v", fi, a, b, c, sx, sok, nx, nok, p)
			}
			if iok != nok || (nok && ixx != nx) {
				t.Fatalf("f#%d FirstReach(%v, %v, %v): indexed (%v, %v), naive (%v, %v)\nf=%v", fi, a, b, c, ixx, iok, nx, nok, p)
			}
		}
	}
	if queries < 10000 {
		t.Fatalf("differential harness ran only %d queries, want >= 10000", queries)
	}
}

// TestIndexedMatchesScanOnPaperFunctions drives the two kernels with
// Algorithm 1-shaped queries (MaxOn over a window, FirstReachDescending
// against the window's own descending line) on the paper's Figure 4
// benchmark functions at full 4000-piece resolution.
func TestIndexedMatchesScanOnPaperFunctions(t *testing.T) {
	for name, p := range CalibratedParams().Benchmarks() {
		ix := NewIndexed(p)
		for _, q := range []float64{15, 20, 100, 650, 2000} {
			for prog := 0.0; prog < p.Domain(); prog += q / 3 {
				sx, sok := p.FirstReachDescending(prog, prog+q, prog+q)
				ixx, iok := ix.FirstReachDescending(prog, prog+q, prog+q)
				if sok != iok || (sok && sx != ixx) {
					t.Fatalf("%s Q=%g prog=%g: FirstReach scan (%v,%v) vs indexed (%v,%v)", name, q, prog, sx, sok, ixx, iok)
				}
				end := prog + q
				if sok {
					end = sx
				}
				st, sv := p.MaxOn(prog, end)
				it, iv := ix.MaxOn(prog, end)
				if st != it || sv != iv {
					t.Fatalf("%s Q=%g prog=%g: MaxOn scan (%v,%v) vs indexed (%v,%v)", name, q, prog, st, sv, it, iv)
				}
			}
		}
	}
}

// --- tie-break contract on plateaus -------------------------------------

// TestMaxOnPlateauTieBreak pins the earliest-maximizer contract on plateaus
// (equal-valued adjacent pieces) for both kernels: when several pieces
// attain the maximum, the earliest point wins — the query start a if its
// piece attains it, otherwise the left breakpoint of the earliest attaining
// piece.
func TestMaxOnPlateauTieBreak(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		vs       []float64
		a, b     float64
		tmax, fv float64
	}{
		{"plateau-from-start", []float64{0, 1, 2, 3}, []float64{5, 5, 3}, 0, 3, 0, 5},
		{"plateau-query-inside", []float64{0, 1, 2, 3}, []float64{5, 5, 3}, 0.5, 3, 0.5, 5},
		{"plateau-later", []float64{0, 1, 2, 3}, []float64{3, 5, 5}, 0, 3, 1, 5},
		{"plateau-start-inside-it", []float64{0, 1, 2, 3}, []float64{3, 5, 5}, 1.5, 3, 1.5, 5},
		{"equal-separated-by-dip", []float64{0, 1, 2, 3}, []float64{5, 1, 5}, 0, 3, 0, 5},
		{"dip-then-two-equal", []float64{0, 1, 2, 3, 4}, []float64{1, 5, 2, 5}, 0, 4, 1, 5},
		{"all-equal", []float64{0, 1, 2, 3}, []float64{4, 4, 4}, 0.25, 2.75, 0.25, 4},
		{"query-at-breakpoint", []float64{0, 1, 2, 3}, []float64{3, 5, 5}, 2, 3, 2, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := NewPiecewise(c.xs, c.vs)
			if err != nil {
				t.Fatal(err)
			}
			ix := NewIndexed(p)
			st, sv := p.MaxOn(c.a, c.b)
			if st != c.tmax || sv != c.fv {
				t.Errorf("scan MaxOn(%g,%g) = (%g,%g), want (%g,%g)", c.a, c.b, st, sv, c.tmax, c.fv)
			}
			it, iv := ix.MaxOn(c.a, c.b)
			if it != c.tmax || iv != c.fv {
				t.Errorf("indexed MaxOn(%g,%g) = (%g,%g), want (%g,%g)", c.a, c.b, it, iv, c.tmax, c.fv)
			}
		})
	}
}

// --- AutoIndex policy ---------------------------------------------------

func TestAutoIndex(t *testing.T) {
	small := Step(1, 2, 10, 4) // 4 pieces: below the indexing threshold
	if got := AutoIndex(small); got != Function(small) {
		t.Errorf("AutoIndex indexed a %d-piece function; threshold is %d", small.Pieces(), autoIndexMinPieces)
	}
	big := Step(1, 2, 100, autoIndexMinPieces)
	ix, ok := AutoIndex(big).(*Indexed)
	if !ok {
		t.Fatalf("AutoIndex left a %d-piece function unindexed", big.Pieces())
	}
	if AutoIndex(ix) != Function(ix) {
		t.Error("AutoIndex rebuilt an already-indexed function")
	}
	var nilP *Piecewise
	if got := AutoIndex(nilP); got != Function(nilP) {
		t.Error("AutoIndex touched a nil *Piecewise")
	}
	t.Run("escape-hatch", func(t *testing.T) {
		t.Setenv(noIndexEnv, "1")
		if _, ok := AutoIndex(big).(*Indexed); ok {
			t.Errorf("AutoIndex ignored %s", noIndexEnv)
		}
	})
}

// TestIndexedSinglePiece covers the degenerate one-piece function, where
// every query resolves inside the first/last piece special cases.
func TestIndexedSinglePiece(t *testing.T) {
	p := Constant(3, 10)
	ix := NewIndexed(p)
	if tm, fv := ix.MaxOn(2, 8); tm != 2 || fv != 3 {
		t.Errorf("MaxOn = (%g,%g), want (2,3)", tm, fv)
	}
	x, ok := ix.FirstReachDescending(0, 10, 8)
	wx, wok := p.FirstReachDescending(0, 10, 8)
	if ok != wok || x != wx {
		t.Errorf("FirstReach indexed (%g,%v), scan (%g,%v)", x, ok, wx, wok)
	}
	if ix.Domain() != 10 || ix.Eval(5) != 3 || ix.Pieces() != 1 {
		t.Error("trivial accessors disagree with the underlying function")
	}
	if ix.Piecewise() != p {
		t.Error("Piecewise() lost the underlying function")
	}
}

package delay

import (
	"math"
	"math/rand"
	"testing"
)

func mustPWL(t *testing.T, xs, ys []float64) *PiecewiseLinear {
	t.Helper()
	p, err := NewPiecewiseLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPiecewiseLinearValidation(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{1}},
		{"single point", []float64{0}, []float64{1}},
		{"not at zero", []float64{1, 2}, []float64{1, 1}},
		{"not increasing", []float64{0, 2, 2}, []float64{1, 1, 1}},
		{"negative value", []float64{0, 1}, []float64{-1, 0}},
		{"NaN value", []float64{0, 1}, []float64{math.NaN(), 0}},
	}
	for _, c := range cases {
		if _, err := NewPiecewiseLinear(c.xs, c.ys); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	p := mustPWL(t, []float64{0, 10, 20}, []float64{0, 10, 0})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {5, 5}, {10, 10}, {15, 5}, {20, 0}, {25, 0},
	}
	for _, c := range cases {
		if got := p.Eval(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if p.Domain() != 20 {
		t.Fatalf("domain = %g", p.Domain())
	}
}

func TestPiecewiseLinearMaxOn(t *testing.T) {
	p := mustPWL(t, []float64{0, 10, 20}, []float64{0, 10, 0})
	tm, fm := p.MaxOn(0, 20)
	if tm != 10 || fm != 10 {
		t.Fatalf("MaxOn = (%g,%g), want (10,10)", tm, fm)
	}
	// Within one rising segment the max is at the right end.
	tm, fm = p.MaxOn(2, 6)
	if tm != 6 || fm != 6 {
		t.Fatalf("MaxOn(2,6) = (%g,%g), want (6,6)", tm, fm)
	}
	// Falling segment: max at the left end.
	tm, fm = p.MaxOn(12, 18)
	if tm != 12 || fm != 8 {
		t.Fatalf("MaxOn(12,18) = (%g,%g), want (12,8)", tm, fm)
	}
}

func TestPiecewiseLinearFirstReach(t *testing.T) {
	// f rises 0->10 over [0,10]: g(x) = f(x)+x = 2x. First x with
	// g >= 12 is 6.
	p := mustPWL(t, []float64{0, 10, 20}, []float64{0, 10, 10})
	x, ok := p.FirstReachDescending(0, 20, 12)
	if !ok || math.Abs(x-6) > 1e-12 {
		t.Fatalf("FirstReach = (%g,%v), want (6,true)", x, ok)
	}
	// Unreachable line.
	if _, ok := p.FirstReachDescending(0, 5, 100); ok {
		t.Fatal("found nonexistent crossing")
	}
	// Start already above the line.
	x, ok = p.FirstReachDescending(8, 20, 10)
	if !ok || x != 8 {
		t.Fatalf("FirstReach = (%g,%v), want (8,true)", x, ok)
	}
}

func TestPiecewiseLinearFirstReachSteepDescent(t *testing.T) {
	// f falls faster than the line rises: g decreasing within the
	// segment; no crossing inside it, but the flat tail catches up.
	p := mustPWL(t, []float64{0, 5, 40}, []float64{20, 0, 0})
	// g on [0,5] falls 20 -> 5; g on [5,40] = x. First g >= 18: at
	// x where x = 18 on the tail... but g(0)=20 >= 18 already.
	x, ok := p.FirstReachDescending(0, 40, 18)
	if !ok || x != 0 {
		t.Fatalf("FirstReach = (%g,%v), want (0,true)", x, ok)
	}
	// Exclude the early region: query from 1. g(1)=17 < 18; crossing
	// within [0,5]? g decreasing -> no; tail: x = 18.
	x, ok = p.FirstReachDescending(1, 40, 18)
	if !ok || math.Abs(x-18) > 1e-12 {
		t.Fatalf("FirstReach = (%g,%v), want (18,true)", x, ok)
	}
}

func TestToPiecewiseEnvelope(t *testing.T) {
	p := mustPWL(t, []float64{0, 10, 20}, []float64{0, 10, 0})
	pc := p.ToPiecewise()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := r.Float64() * 20
		if pc.Eval(x) < p.Eval(x)-1e-12 {
			t.Fatalf("envelope below function at %g: %g < %g", x, pc.Eval(x), p.Eval(x))
		}
	}
	if pc.Pieces() != 2 {
		t.Fatalf("pieces = %d, want 2", pc.Pieces())
	}
}

// Property: random PWL functions agree with dense sampling on MaxOn and
// FirstReachDescending semantics.
func TestPiecewiseLinearQueriesAgainstSampling(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(6)
		xs := make([]float64, n+1)
		ys := make([]float64, n+1)
		for i := 1; i <= n; i++ {
			xs[i] = xs[i-1] + 1 + r.Float64()*20
		}
		for i := range ys {
			ys[i] = r.Float64() * 12
		}
		p, err := NewPiecewiseLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Domain()
		a := r.Float64() * d * 0.8
		b := a + r.Float64()*(d-a)
		_, fm := p.MaxOn(a, b)
		for i := 0; i < 40; i++ {
			x := a + r.Float64()*(b-a)
			if p.Eval(x) > fm+1e-9 {
				t.Fatalf("trial %d: MaxOn %g below f(%g)=%g", trial, fm, x, p.Eval(x))
			}
		}
		c := a + r.Float64()*30
		x, ok := p.FirstReachDescending(a, b, c)
		if ok {
			if p.Eval(x) < c-x-1e-9 {
				t.Fatalf("trial %d: returned %g violates f >= c-x", trial, x)
			}
			for i := 0; i < 40; i++ {
				y := a + r.Float64()*(x-a)
				if y < x-1e-9 && p.Eval(y) >= c-y+1e-9 {
					t.Fatalf("trial %d: earlier point %g satisfies before %g", trial, y, x)
				}
			}
		} else {
			for i := 0; i < 40; i++ {
				y := a + r.Float64()*(b-a)
				if p.Eval(y) >= c-y+1e-9 {
					t.Fatalf("trial %d: missed satisfying point %g", trial, y)
				}
			}
		}
	}
}

package delay

import (
	"math"
	"testing"
)

func TestGaussianShape(t *testing.T) {
	g := Gaussian(10, 100, 50, 2)
	if got := g(100); math.Abs(got-12) > 1e-12 {
		t.Fatalf("peak = %g, want 12", got)
	}
	if g(0) < 2 || g(0) > 2.01 {
		t.Fatalf("far tail = %g, want ~2", g(0))
	}
	if g(90) >= g(100) || g(110) >= g(100) {
		t.Fatal("Gaussian not peaked at mu")
	}
	if math.Abs(g(90)-g(110)) > 1e-12 {
		t.Fatal("Gaussian not symmetric")
	}
}

func TestGaussianMixClamp(t *testing.T) {
	m := GaussianMix(10,
		Gaussian(8, 50, 100, 0),
		Gaussian(8, 55, 100, 0),
	)
	if m(52) > 10 {
		t.Fatalf("mix exceeds cap: %g", m(52))
	}
	un := GaussianMix(0, Gaussian(8, 50, 100, 0), Gaussian(8, 55, 100, 0))
	if un(52) <= 10 {
		t.Fatalf("uncapped mix should exceed 10, got %g", un(52))
	}
}

func TestUpperEnvelopeDominates(t *testing.T) {
	fn := Gaussian(10, 2000, 30000, 0)
	env, err := UpperEnvelope(fn, 4000, 4000, []float64{2000})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 4000; x += 7.3 {
		if env.Eval(x) < fn(x)-1e-9 {
			t.Fatalf("envelope below function at %g: %g < %g", x, env.Eval(x), fn(x))
		}
	}
	// The peak is captured exactly because the mode is supplied.
	if _, fm := env.Max(); math.Abs(fm-10) > 1e-9 {
		t.Fatalf("envelope max = %g, want 10", fm)
	}
}

func TestUpperEnvelopeValidation(t *testing.T) {
	fn := func(float64) float64 { return 1 }
	if _, err := UpperEnvelope(fn, 0, 10, nil); err == nil {
		t.Fatal("accepted zero domain")
	}
	if _, err := UpperEnvelope(fn, math.NaN(), 10, nil); err == nil {
		t.Fatal("accepted NaN domain")
	}
	if _, err := UpperEnvelope(fn, 10, 0, nil); err == nil {
		t.Fatal("accepted zero pieces")
	}
}

func TestUpperEnvelopeClampsNegative(t *testing.T) {
	fn := func(float64) float64 { return -5 }
	env, err := UpperEnvelope(fn, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Eval(5) != 0 {
		t.Fatalf("negative function not clamped to 0: %g", env.Eval(5))
	}
}

func TestLiteralParams(t *testing.T) {
	p := LiteralParams()
	if p.C != 4000 || p.Mu != 2000 || p.Sigma2A != 300 || p.Sigma2B != 3000 {
		t.Fatalf("literal params wrong: %+v", p)
	}
}

func TestCalibratedParams(t *testing.T) {
	p := CalibratedParams()
	if p.Sigma2A != 30000 || p.Sigma2B != 300000 {
		t.Fatalf("calibrated params wrong: %+v", p)
	}
}

func TestPaperBenchmarkShapes(t *testing.T) {
	for _, params := range []BenchmarkParams{LiteralParams(), CalibratedParams()} {
		g1 := params.Gaussian1()
		g2 := params.TwoLocalMax()
		gb := params.Gaussian2()

		// All defined on [0, 4000].
		for _, f := range []*Piecewise{g1, g2, gb} {
			if f.Domain() != 4000 {
				t.Fatalf("domain = %g, want 4000", f.Domain())
			}
		}
		// Gaussian 1 floor is the offset; peak is offset+amp at mu.
		if v := g1.Eval(0); math.Abs(v-params.Offset1) > 0.01 {
			t.Fatalf("Gaussian1 floor = %g, want ~%g", v, params.Offset1)
		}
		if _, fm := g1.Max(); math.Abs(fm-(params.Offset1+params.Amp1)) > 1e-6 {
			t.Fatalf("Gaussian1 peak = %g, want %g", fm, params.Offset1+params.Amp1)
		}
		// Gaussian 2 peaks at 10 at mu and decays to ~0 at the borders.
		if _, fm := gb.Max(); math.Abs(fm-params.Amp) > 1e-6 {
			t.Fatalf("Gaussian2 peak = %g, want %g", fm, params.Amp)
		}
		// Two local maxima: high near C/4 and 3C/4, low at centre
		// relative to the peaks.
		p1 := g2.Eval(params.C / 4)
		mid := g2.Eval(params.C / 2)
		p2 := g2.Eval(3 * params.C / 4)
		if p1 < 9.9 || p2 < 9.9 {
			t.Fatalf("two-peak maxima = %g, %g; want ~10", p1, p2)
		}
		if mid >= p1 || mid >= p2 {
			t.Fatalf("two-peak centre %g not below peaks %g/%g", mid, p1, p2)
		}
	}
}

func TestBenchmarksMapComplete(t *testing.T) {
	b := LiteralParams().Benchmarks()
	for _, name := range BenchmarkOrder() {
		if _, ok := b[name]; !ok {
			t.Fatalf("benchmark %q missing", name)
		}
	}
	if len(b) != len(BenchmarkOrder()) {
		t.Fatalf("benchmarks = %d, want %d", len(b), len(BenchmarkOrder()))
	}
}

func TestStepFunction(t *testing.T) {
	p := Step(1, 9, 100, 4)
	if p.Pieces() != 4 || p.Domain() != 100 {
		t.Fatalf("Step shape wrong: %v", p)
	}
	if p.Eval(10) != 9 || p.Eval(30) != 1 || p.Eval(60) != 9 || p.Eval(90) != 1 {
		t.Fatalf("Step values wrong: %v", p)
	}
}

func TestFrontLoaded(t *testing.T) {
	p := FrontLoaded(20, 2, 1000)
	if p.Eval(50) != 20 {
		t.Fatalf("front value = %g, want 20", p.Eval(50))
	}
	if p.Eval(900) != 2 {
		t.Fatalf("tail value = %g, want 2", p.Eval(900))
	}
	if p.Eval(250) != 11 {
		t.Fatalf("middle value = %g, want 11", p.Eval(250))
	}
}

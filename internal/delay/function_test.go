package delay

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustPW(t *testing.T, xs, vs []float64) *Piecewise {
	t.Helper()
	p, err := NewPiecewise(xs, vs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPiecewiseValidation(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		vs   []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{1, 2}},
		{"empty", []float64{0}, nil},
		{"domain not at 0", []float64{1, 2}, []float64{1}},
		{"not increasing", []float64{0, 2, 2}, []float64{1, 2}},
		{"decreasing", []float64{0, 3, 1}, []float64{1, 2}},
		{"negative value", []float64{0, 1}, []float64{-1}},
		{"NaN value", []float64{0, 1}, []float64{math.NaN()}},
		{"inf value", []float64{0, 1}, []float64{math.Inf(1)}},
	}
	for _, c := range cases {
		if _, err := NewPiecewise(c.xs, c.vs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNewPiecewiseCopiesInput(t *testing.T) {
	xs := []float64{0, 1, 2}
	vs := []float64{3, 4}
	p := mustPW(t, xs, vs)
	xs[1] = 99
	vs[0] = 99
	if p.Eval(0.5) != 3 {
		t.Fatal("Piecewise shares caller storage")
	}
}

func TestEval(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20, 40}, []float64{1, 5, 2})
	cases := []struct{ t, want float64 }{
		{-5, 1}, {0, 1}, {9.99, 1},
		{10, 5}, {15, 5},
		{20, 2}, {39, 2}, {40, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := p.Eval(c.t); got != c.want {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestConstant(t *testing.T) {
	p := Constant(7, 100)
	if p.Domain() != 100 || p.Eval(50) != 7 || p.Pieces() != 1 {
		t.Fatalf("Constant broken: %v", p)
	}
}

func TestMaxOn(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20, 40}, []float64{1, 5, 2})
	tm, fm := p.MaxOn(0, 40)
	if fm != 5 || tm != 10 {
		t.Fatalf("MaxOn(0,40) = (%g,%g), want (10,5)", tm, fm)
	}
	tm, fm = p.MaxOn(0, 9)
	if fm != 1 || tm != 0 {
		t.Fatalf("MaxOn(0,9) = (%g,%g), want (0,1)", tm, fm)
	}
	tm, fm = p.MaxOn(15, 35)
	if fm != 5 || tm != 15 {
		t.Fatalf("MaxOn(15,35) = (%g,%g), want (15,5)", tm, fm)
	}
	tm, fm = p.MaxOn(25, 35)
	if fm != 2 || tm != 25 {
		t.Fatalf("MaxOn(25,35) = (%g,%g), want (25,2)", tm, fm)
	}
	// Degenerate and out-of-domain ranges clamp.
	_, fm = p.MaxOn(50, 60)
	if fm != 2 {
		t.Fatalf("MaxOn beyond domain = %g, want 2", fm)
	}
}

func TestMaxGlobal(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20, 40}, []float64{1, 5, 2})
	tm, fm := p.Max()
	if tm != 10 || fm != 5 {
		t.Fatalf("Max = (%g,%g), want (10,5)", tm, fm)
	}
}

func TestFirstReachDescendingBasic(t *testing.T) {
	// f = 0 on [0,10), 8 on [10,20]; line c - x with c = 15:
	// on [0,10) need 0 >= 15-x -> x >= 15, outside the piece;
	// on [10,15] need 8 >= 15-x -> x >= 7 -> first x = 10.
	p := mustPW(t, []float64{0, 10, 20}, []float64{0, 8})
	x, ok := p.FirstReachDescending(0, 15, 15)
	if !ok || x != 10 {
		t.Fatalf("FirstReach = (%g,%v), want (10,true)", x, ok)
	}
}

func TestFirstReachDescendingWithinPiece(t *testing.T) {
	// f = 3 constant; c = 10: 3 >= 10-x -> x >= 7.
	p := Constant(3, 20)
	x, ok := p.FirstReachDescending(0, 10, 10)
	if !ok || x != 7 {
		t.Fatalf("FirstReach = (%g,%v), want (7,true)", x, ok)
	}
}

func TestFirstReachDescendingNone(t *testing.T) {
	// f = 1; c = 100: need x >= 99, outside [0,10].
	p := Constant(1, 20)
	if _, ok := p.FirstReachDescending(0, 10, 100); ok {
		t.Fatal("FirstReach found a crossing that does not exist")
	}
}

func TestFirstReachDescendingAtRangeEnd(t *testing.T) {
	// f = 5 on [0,20]; c = 15: x >= 10; query [0,10] -> exactly x = 10.
	p := Constant(5, 20)
	x, ok := p.FirstReachDescending(0, 10, 15)
	if !ok || x != 10 {
		t.Fatalf("FirstReach = (%g,%v), want (10,true)", x, ok)
	}
}

func TestFirstReachBoundaryOwnedByNextPiece(t *testing.T) {
	// f = 10 on [0,5), 0 on [5,20]. c = 15: within piece 0, x >= 5 —
	// but x = 5 belongs to the second piece where f = 0 < 10. The first
	// true reach does not exist until x >= 15: f(15) = 0 >= 15-15 = 0.
	p := mustPW(t, []float64{0, 5, 20}, []float64{10, 0})
	x, ok := p.FirstReachDescending(0, 20, 15)
	if !ok || x != 15 {
		t.Fatalf("FirstReach = (%g,%v), want (15,true)", x, ok)
	}
}

func TestFirstReachAfterStart(t *testing.T) {
	// Query starting mid-domain.
	p := mustPW(t, []float64{0, 10, 20, 30}, []float64{0, 0, 9})
	// c = 25: on piece [20,30], f=9 >= 25-x -> x >= 16 -> x = 20.
	x, ok := p.FirstReachDescending(12, 28, 25)
	if !ok || x != 20 {
		t.Fatalf("FirstReach = (%g,%v), want (20,true)", x, ok)
	}
}

func TestScale(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20}, []float64{2, 4})
	q, err := p.Scale(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eval(5) != 5 || q.Eval(15) != 10 {
		t.Fatalf("Scale values wrong: %v", q)
	}
	if _, err := p.Scale(-1); err == nil {
		t.Fatal("Scale accepted negative factor")
	}
	if _, err := p.Scale(math.NaN()); err == nil {
		t.Fatal("Scale accepted NaN factor")
	}
}

func TestMaxWith(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20}, []float64{1, 5})
	q := mustPW(t, []float64{0, 5, 20}, []float64{3, 2})
	m, err := p.MaxWith(q)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{2, 3}, {7, 2}, {12, 5},
	}
	for _, c := range cases {
		if got := m.Eval(c.t); got != c.want {
			t.Errorf("MaxWith Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	r := mustPW(t, []float64{0, 30}, []float64{1})
	if _, err := p.MaxWith(r); err == nil {
		t.Fatal("MaxWith accepted mismatched domains")
	}
}

func TestCompact(t *testing.T) {
	p := mustPW(t, []float64{0, 5, 10, 15, 20}, []float64{1, 1, 2, 2})
	c := p.Compact()
	if c.Pieces() != 2 {
		t.Fatalf("Compact pieces = %d, want 2", c.Pieces())
	}
	for _, tt := range []float64{0, 4, 5, 9, 10, 19, 20} {
		if c.Eval(tt) != p.Eval(tt) {
			t.Fatalf("Compact changed value at %g", tt)
		}
	}
}

func TestAccessors(t *testing.T) {
	p := mustPW(t, []float64{0, 1, 2}, []float64{3, 4})
	bp := p.Breakpoints()
	vv := p.Values()
	bp[0] = 99
	vv[0] = 99
	if p.Breakpoints()[0] != 0 || p.Values()[0] != 3 {
		t.Fatal("accessors leak internal storage")
	}
	if !strings.Contains(p.String(), "[0,1)=3") {
		t.Fatalf("String() = %q", p.String())
	}
}

// randomPW builds a random piecewise function for property tests.
func randomPW(r *rand.Rand) *Piecewise {
	n := r.Intn(8) + 1
	xs := make([]float64, n+1)
	vs := make([]float64, n)
	xs[0] = 0
	for i := 1; i <= n; i++ {
		xs[i] = xs[i-1] + float64(r.Intn(20)+1)
	}
	for i := range vs {
		vs[i] = float64(r.Intn(15))
	}
	p, err := NewPiecewise(xs, vs)
	if err != nil {
		panic(err)
	}
	return p
}

// Property: MaxOn dominates Eval at any sampled point of the range.
func TestMaxOnDominatesEval(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := randomPW(r)
		d := p.Domain()
		a := r.Float64() * d
		b := a + r.Float64()*(d-a)
		_, fm := p.MaxOn(a, b)
		for i := 0; i < 20; i++ {
			x := a + r.Float64()*(b-a)
			if p.Eval(x) > fm {
				t.Fatalf("MaxOn(%g,%g)=%g < Eval(%g)=%g on %v", a, b, fm, x, p.Eval(x), p)
			}
		}
		// And the reported argmax achieves the max.
		tm, fm2 := p.MaxOn(a, b)
		if p.Eval(tm) != fm2 {
			t.Fatalf("argmax %g does not achieve max %g on %v", tm, fm2, p)
		}
	}
}

// Property: FirstReachDescending returns the minimal point satisfying
// f(x) >= c-x; no sampled earlier point satisfies it, and the returned point
// does.
func TestFirstReachMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		p := randomPW(r)
		d := p.Domain()
		a := r.Float64() * d * 0.8
		b := a + r.Float64()*(d-a)
		c := a + r.Float64()*25
		x, ok := p.FirstReachDescending(a, b, c)
		if ok {
			if x < a-1e-12 || x > b+1e-12 {
				t.Fatalf("returned point %g outside [%g,%g]", x, a, b)
			}
			if p.Eval(x) < c-x-1e-9 {
				t.Fatalf("returned point %g does not satisfy f >= c-x (f=%g, c-x=%g)", x, p.Eval(x), c-x)
			}
			// No sampled earlier point satisfies the condition.
			for i := 0; i < 40; i++ {
				y := a + r.Float64()*(x-a)
				if y < x-1e-9 && p.Eval(y) >= c-y+1e-9 {
					t.Fatalf("earlier point %g already satisfies f >= c-x (x=%g) on %v c=%g", y, x, p, c)
				}
			}
		} else {
			for i := 0; i < 40; i++ {
				y := a + r.Float64()*(b-a)
				if p.Eval(y) >= c-y+1e-9 {
					t.Fatalf("FirstReach missed satisfying point %g on %v (c=%g, a=%g, b=%g)", y, p, c, a, b)
				}
			}
		}
	}
}

// Property (quick): Eval is always one of the piece values.
func TestEvalReturnsPieceValue(t *testing.T) {
	f := func(seed int64, probe float64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPW(r)
		v := p.Eval(math.Mod(math.Abs(probe), p.Domain()+10))
		for _, pv := range p.Values() {
			if v == pv {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlus(t *testing.T) {
	p := mustPW(t, []float64{0, 10, 20}, []float64{1, 5})
	q := mustPW(t, []float64{0, 5, 20}, []float64{3, 2})
	s, err := p.Plus(q)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{{2, 4}, {7, 3}, {12, 7}}
	for _, c := range cases {
		if got := s.Eval(c.t); got != c.want {
			t.Errorf("Plus Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	r := mustPW(t, []float64{0, 30}, []float64{1})
	if _, err := p.Plus(r); err == nil {
		t.Fatal("Plus accepted mismatched domains")
	}
}

package delay

import (
	"math"
	"math/bits"
	"os"
	"sync"
	"time"

	"fnpr/internal/obs"
)

// This file implements the query-accelerated view of a Piecewise function:
// the performance kernel behind the figure-level sweeps. A Piecewise answers
// MaxOn and FirstReachDescending by scanning every piece overlapping the
// query window — O(pieces) per Algorithm 1 window, so fine-grained
// CFG-derived functions (hundreds of basic blocks) make each (task, Q)
// analysis quadratic and a whole Figure 5 grid multiplies that cost. Indexed
// preprocesses the pieces once — O(n log n) time and memory — and then
// answers every query in O(log n), bit-for-bit identical to the scan (the
// differential and golden tests in this package and internal/eval prove the
// equivalence; the fuzzers drive it continuously).

// autoIndexMinPieces is the piece count below which AutoIndex leaves a
// function un-indexed: the scan over a handful of pieces is cheaper than the
// sparse-table lookups, and the index memory would be pure overhead.
const autoIndexMinPieces = 32

// noIndexEnv is the escape hatch: setting FNPR_NO_INDEX=1 (any non-empty
// value) makes AutoIndex a no-op, forcing every analysis back onto the
// linear-scan kernel. The golden tests run both ways and assert byte-equal
// output.
const noIndexEnv = "FNPR_NO_INDEX"

// Indexed is a Piecewise function with precomputed query structures:
//
//   - a sparse table of earliest-argmax piece indices, so MaxOn is two O(1)
//     table lookups instead of an O(pieces) scan;
//   - a sparse table of range maxima over s[k] = vs[k] + xs[k+1] (the
//     largest value the descending-line test can meet inside piece k), so
//     FirstReachDescending binary-searches the first piece that can contain
//     a crossing instead of scanning up to the whole window.
//
// Indexed implements Function and answers every query bit-for-bit identically
// to the underlying Piecewise, including the earliest-maximizer tie-break of
// MaxOn on plateaus. It is immutable after construction and therefore safe
// for concurrent use by the sweep worker pool; build it once per function and
// share it across the whole Q grid.
type Indexed struct {
	p *Piecewise
	// arg[l][i] is the index of the earliest maximum-value piece in
	// vs[i : i+2^l]. Ties prefer the lower index, preserving the
	// earliest-maximizer contract of Piecewise.MaxOn.
	arg [][]int32
	// reach[l][i] is max(s[i : i+2^l]) with s[k] = vs[k] + xs[k+1].
	reach [][]float64
	// slack over-approximates the rounding error between the exact
	// per-piece crossing test (computed on c - vs[k]) and the indexed
	// pre-filter (computed on vs[k] + xs[k+1]): a piece whose s value is
	// below c - slack provably contains no crossing, so the search may
	// skip it; pieces above the threshold are re-checked with the exact
	// scan test, keeping results bit-identical.
	slack float64

	// fp caches the canonical fingerprint (fingerprint.go), computed
	// lazily: sweeps fingerprint the same shared Indexed once per grid
	// point, and sync.Once keeps that safe and amortized.
	fpOnce sync.Once
	fp     Fingerprint
}

// NewIndexed builds the query index for p in O(n log n) time and memory
// (roughly 12·n·log2(n) bytes for n pieces). The result shares p's piece
// storage; p must not be mutated afterwards (Piecewise has no mutating
// methods, so this only matters for code reaching into unexported state).
func NewIndexed(p *Piecewise) *Indexed {
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	n := len(p.vs)
	levels := bits.Len(uint(n))
	ix := &Indexed{
		p:     p,
		arg:   make([][]int32, levels),
		reach: make([][]float64, levels),
	}
	base := make([]int32, n)
	s := make([]float64, n)
	maxSum := 0.0
	for k := 0; k < n; k++ {
		base[k] = int32(k)
		s[k] = p.vs[k] + p.xs[k+1]
		if s[k] > maxSum {
			maxSum = s[k]
		}
	}
	ix.arg[0] = base
	ix.reach[0] = s
	for lvl := 1; lvl < levels; lvl++ {
		width := 1 << lvl
		half := width >> 1
		prevA, prevR := ix.arg[lvl-1], ix.reach[lvl-1]
		m := n - width + 1
		a := make([]int32, m)
		r := make([]float64, m)
		for i := 0; i < m; i++ {
			l, rt := prevA[i], prevA[i+half]
			if p.vs[l] >= p.vs[rt] {
				a[i] = l
			} else {
				a[i] = rt
			}
			if prevR[i] >= prevR[i+half] {
				r[i] = prevR[i]
			} else {
				r[i] = prevR[i+half]
			}
		}
		ix.arg[lvl] = a
		ix.reach[lvl] = r
	}
	// 8 units in the last place of the largest s value bounds the combined
	// rounding of (c - vs[k]) vs (vs[k] + xs[k+1]) with a 4x margin; +Inf
	// (overflowing sums) degrades to a full exact scan, never to a wrong
	// answer.
	const eps = 2.220446049250313e-16
	ix.slack = 8 * eps * math.Max(1, maxSum)
	if obs.Enabled() {
		flushIndexBuild(time.Since(start).Nanoseconds())
	}
	return ix
}

// AutoIndex wraps f in a query index when that is worthwhile: piecewise
// functions with at least autoIndexMinPieces pieces gain O(log n) queries,
// smaller ones and non-piecewise implementations pass through unchanged, and
// an already-indexed function is returned as-is (so repeated AutoIndex calls
// never rebuild). Setting FNPR_NO_INDEX in the environment disables wrapping
// entirely — the escape hatch the differential golden tests use to compare
// the two kernels end to end.
func AutoIndex(f Function) Function {
	switch pf := f.(type) {
	case *Indexed:
		return pf
	case *Piecewise:
		if pf != nil && pf.Pieces() >= autoIndexMinPieces && os.Getenv(noIndexEnv) == "" {
			return NewIndexed(pf)
		}
	}
	return f
}

// Piecewise returns the underlying scan-kernel function.
func (ix *Indexed) Piecewise() *Piecewise { return ix.p }

// Pieces returns the number of constant pieces.
func (ix *Indexed) Pieces() int { return ix.p.Pieces() }

// Domain implements Function.
func (ix *Indexed) Domain() float64 { return ix.p.Domain() }

// Eval implements Function.
func (ix *Indexed) Eval(t float64) float64 { return ix.p.Eval(t) }

// String renders the underlying function.
func (ix *Indexed) String() string { return ix.p.String() }

// argmax returns the index of the earliest maximum-value piece in [l, r]
// (inclusive). The two overlapping sparse-table windows preserve the
// earliest tie-break: if the overall earliest maximizer lies in the left
// window it wins its window and the >= comparison keeps it; otherwise the
// left window's maximum is strictly smaller and the right window — which
// starts at or before the earliest maximizer — supplies it.
func (ix *Indexed) argmax(l, r int) int {
	lvl := bits.Len(uint(r-l+1)) - 1
	a, b := ix.arg[lvl][l], ix.arg[lvl][r-(1<<lvl)+1]
	if ix.p.vs[a] >= ix.p.vs[b] {
		return int(a)
	}
	return int(b)
}

// reachMax returns max(s[l : r+1]).
func (ix *Indexed) reachMax(l, r int) float64 {
	lvl := bits.Len(uint(r-l+1)) - 1
	a, b := ix.reach[lvl][l], ix.reach[lvl][r-(1<<lvl)+1]
	if a >= b {
		return a
	}
	return b
}

// firstReachAtLeast returns the smallest k in [l, r] with s[k] >= threshold,
// or -1 when the whole range stays below it. O(log n): a binary search
// driven by O(1) range-maximum lookups.
func (ix *Indexed) firstReachAtLeast(l, r int, threshold float64) int {
	if ix.reachMax(l, r) < threshold {
		return -1
	}
	for l < r {
		m := (l + r) / 2
		if ix.reachMax(l, m) >= threshold {
			r = m
		} else {
			l = m + 1
		}
	}
	return l
}

// MaxOn implements Function with the same contract as Piecewise.MaxOn —
// including the earliest-maximizer tie-break: when several pieces share the
// maximum, the earliest one wins, and when the query start a lies in a piece
// attaining the maximum, tmax is a itself.
func (ix *Indexed) MaxOn(a, b float64) (tmax, fmax float64) {
	p := ix.p
	a, b = p.clampRange(a, b)
	i, j := p.pieceAt(a), p.pieceAt(b)
	if j > i {
		if k := ix.argmax(i+1, j); p.vs[k] > p.vs[i] {
			return p.xs[k], p.vs[k]
		}
	}
	return a, p.vs[i]
}

// FirstReachDescending implements Function, bit-identical to the Piecewise
// scan. The first and last pieces of the query window are checked with the
// exact scan test directly; for the interior — where the scan walks every
// piece — the reach table locates the first piece whose s[k] = vs[k]+xs[k+1]
// can meet the line at all, and only candidate pieces within rounding slack
// of the threshold are re-checked exactly. Pieces skipped by the pre-filter
// provably fail the exact test, so the first accepted crossing is the same
// one the scan finds.
func (ix *Indexed) FirstReachDescending(a, b, c float64) (x float64, found bool) {
	x, found, _ = ix.FirstReachDescendingHint(a, b, c, -1)
	return x, found
}

// FirstReachDescendingHint is FirstReachDescending with cross-query seeding:
// hint names the piece where a previous, similar query (typically the same
// walk iteration at an adjacent Q grid point) found its crossing, and piece
// reports where this query found its own (-1 when there is none) so the
// caller can seed the next query. When the interior prefix before the hinted
// piece provably cannot reach the line (its range maximum stays below the
// threshold minus the rounding slack — the same argument that lets the
// bisection skip pieces), the search starts with one exact recheck at the
// hinted piece, answering the common case in O(1); otherwise the hint is
// ignored. Either way the result is bit-identical to the unhinted query: out
// of range, stale or adversarial hints only cost an extra exact recheck.
func (ix *Indexed) FirstReachDescendingHint(a, b, c float64, hint int) (x float64, found bool, piece int) {
	// Plain local tallies (register increments) keep the query loop free of
	// atomics; the single flush at the end is skipped unless obs.Enable()
	// has been called, so the uninstrumented cost is one atomic bool load.
	var rechecks, bisections int64
	defer func() {
		if obs.Enabled() {
			flushIndexQuery(rechecks, bisections)
		}
	}()
	p := ix.p
	a, b = p.clampRange(a, b)
	i, j := p.pieceAt(a), p.pieceAt(b)
	rechecks++
	if x, ok := p.reachInPiece(i, a, b, c); ok {
		return x, true, i
	}
	if j > i {
		cLo := c - ix.slack
		lo, hi := i+1, j-1
		if hint >= lo && hint <= hi && (hint == lo || ix.reachMax(lo, hint-1) < cLo) {
			// Every interior piece before the hint provably fails the
			// exact test, so the hinted piece is the first candidate:
			// recheck it exactly, and on a miss resume the bisection
			// right after it.
			rechecks++
			if x, ok := p.reachInPiece(hint, a, b, c); ok {
				return x, true, hint
			}
			lo = hint + 1
		}
		for lo <= hi {
			bisections++
			k := ix.firstReachAtLeast(lo, hi, cLo)
			if k < 0 {
				break
			}
			rechecks++
			if x, ok := p.reachInPiece(k, a, b, c); ok {
				return x, true, k
			}
			lo = k + 1
		}
		rechecks++
		if x, ok := p.reachInPiece(j, a, b, c); ok {
			return x, true, j
		}
	}
	return 0, false, -1
}

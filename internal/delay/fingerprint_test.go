package delay

import (
	"math"
	"math/rand"
	"testing"
)

// splitPieces rebuilds p with every piece randomly subdivided into runs of
// equal-valued pieces — a semantically identical function constructed in a
// different piece order/granularity.
func splitPieces(t testing.TB, p *Piecewise, rng *rand.Rand) *Piecewise {
	t.Helper()
	xs := p.Breakpoints()
	vs := p.Values()
	var nxs, nvs []float64
	for i := range vs {
		lo, hi := xs[i], xs[i+1]
		nxs = append(nxs, lo)
		nvs = append(nvs, vs[i])
		for k := rng.Intn(3); k > 0; k-- {
			mid := lo + (hi-lo)*(0.25+0.5*rng.Float64())
			if mid <= nxs[len(nxs)-1] || mid >= hi {
				continue
			}
			nxs = append(nxs, mid)
			nvs = append(nvs, vs[i])
		}
	}
	nxs = append(nxs, xs[len(xs)-1])
	out, err := NewPiecewise(nxs, nvs)
	if err != nil {
		t.Fatalf("splitPieces: %v", err)
	}
	return out
}

func TestFingerprintCanonicalAcrossConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		xs := []float64{0}
		vs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			xs = append(xs, xs[len(xs)-1]+0.1+rng.Float64()*5)
			vs = append(vs, math.Floor(rng.Float64()*8)) // coarse values force equal-value runs
		}
		p, err := NewPiecewise(xs, vs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FingerprintOf(p)
		if err != nil {
			t.Fatal(err)
		}
		split := splitPieces(t, p, rng)
		if got, _ := FingerprintOf(split); got != want {
			t.Fatalf("trial %d: split construction changed fingerprint\n%v\nvs\n%v", trial, p, split)
		}
		// The indexed view shares the identity of its underlying function.
		if got, err := FingerprintOf(NewIndexed(p)); err != nil || got != want {
			t.Fatalf("trial %d: indexed fingerprint %v (err %v), want %v", trial, got, err, want)
		}
		if got, _ := FingerprintOf(NewIndexed(split)); got != want {
			t.Fatalf("trial %d: indexed split fingerprint differs", trial)
		}
		// Compact is exactly the canonical form; it must be a fixpoint.
		if got, _ := FingerprintOf(split.Compact()); got != want {
			t.Fatalf("trial %d: Compact changed fingerprint", trial)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p, err := NewPiecewise([]float64{0, 3, 7, 10}, []float64{2, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := FingerprintOf(p)
	if err != nil {
		t.Fatal(err)
	}
	// One ulp on any value or interior breakpoint must change the hash.
	mutate := func(xs, vs []float64) {
		t.Helper()
		q, err := NewPiecewise(xs, vs)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := FingerprintOf(q); got == base {
			t.Fatalf("mutation xs=%v vs=%v kept fingerprint %v", xs, vs, base)
		}
	}
	mutate([]float64{0, 3, 7, 10}, []float64{math.Nextafter(2, 3), 5, 1})
	mutate([]float64{0, math.Nextafter(3, 4), 7, 10}, []float64{2, 5, 1})
	mutate([]float64{0, 3, 7, math.Nextafter(10, 11)}, []float64{2, 5, 1})
	mutate([]float64{0, 3, 7, 10}, []float64{2, 5, math.Nextafter(1, 0)})
	// A different family never matches structurally.
	lin, err := NewPiecewiseLinear([]float64{0, 10}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := FingerprintOf(lin); got == base {
		t.Fatal("piecewise-linear collided with piecewise-constant")
	}
}

func TestFingerprintLinearCanonical(t *testing.T) {
	// A collinear interior point is redundant: splitting the segment [0,8]
	// of slope 0.5 at x=4 (y=4, exactly representable) must not change the
	// identity.
	a, err := NewPiecewiseLinear([]float64{0, 8}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPiecewiseLinear([]float64{0, 4, 8}, []float64{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := FingerprintOf(a)
	fb, _ := FingerprintOf(b)
	if fa != fb {
		t.Fatalf("redundant collinear point changed fingerprint: %v vs %v", fa, fb)
	}
	c, err := NewPiecewiseLinear([]float64{0, 4, 8}, []float64{0, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fc, _ := FingerprintOf(c); fc == fa {
		t.Fatal("bent linear function collided with the straight one")
	}
}

func TestFingerprintUnkeyableFunction(t *testing.T) {
	if _, err := FingerprintOf(adhocFunction{}); err == nil {
		t.Fatal("expected an error for a non-canonical Function implementation")
	}
}

// adhocFunction is a Function outside the canonical families.
type adhocFunction struct{}

func (adhocFunction) Domain() float64                       { return 1 }
func (adhocFunction) Eval(float64) float64                  { return 0 }
func (adhocFunction) MaxOn(a, b float64) (float64, float64) { return a, 0 }
func (adhocFunction) FirstReachDescending(a, b, c float64) (float64, bool) {
	return 0, false
}

// FuzzFingerprintCanonical drives the two halves of the fingerprint
// contract on fuzzer-chosen functions: (1) a semantically identical
// construction — the same step function with pieces subdivided at fuzzer-
// chosen points — hashes equal; (2) flipping a single chosen bit of a single
// value yields a different hash whenever the mutation changes the canonical
// form.
func FuzzFingerprintCanonical(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0), uint8(13))
	f.Add(int64(42), uint8(8), uint8(2), uint8(51))
	f.Add(int64(9), uint8(1), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, npieces, mutPiece, mutBit uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(npieces)%16 + 1
		xs := []float64{0}
		vs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			xs = append(xs, xs[len(xs)-1]+0.05+rng.Float64()*3)
			vs = append(vs, math.Floor(rng.Float64()*6))
		}
		p, err := NewPiecewise(xs, vs)
		if err != nil {
			t.Skip()
		}
		base, err := FingerprintOf(p)
		if err != nil {
			t.Fatal(err)
		}
		// (1) Equal-by-construction: subdivided pieces, indexed view.
		split := splitPieces(t, p, rng)
		if got, _ := FingerprintOf(split); got != base {
			t.Fatalf("split construction changed fingerprint\n%v\nvs\n%v", p, split)
		}
		if got, _ := FingerprintOf(NewIndexed(split)); got != base {
			t.Fatal("indexed view changed fingerprint")
		}
		// (2) Single-bit sensitivity: flip one mantissa/exponent bit of one
		// value. Skip mutations that produce an invalid function (negative,
		// NaN, Inf) — those cannot be constructed, hence carry no identity.
		i := int(mutPiece) % n
		mut := append([]float64(nil), vs...)
		mut[i] = math.Float64frombits(math.Float64bits(mut[i]) ^ (1 << (mutBit % 64)))
		q, err := NewPiecewise(xs, mut)
		if err != nil {
			t.Skip()
		}
		mutated, err := FingerprintOf(q)
		if err != nil {
			t.Fatal(err)
		}
		// A single xor can never leave the mutated value bit-equal, but it
		// can leave the bit-level canonical form equal is impossible too —
		// the mutated piece either changes its canonical value or changes
		// which pieces merge. Compare bit-level canonical forms (the exact
		// equivalence the fingerprint encodes; note Compact() is NOT that
		// oracle — it merges 0 and -0, which are bit-distinct) to decide the
		// verdict.
		if bitCanonEqual(p, q) {
			if mutated != base {
				t.Fatal("equal bit-canonical forms with different fingerprints")
			}
			return
		}
		if mutated == base {
			t.Fatalf("bit flip in piece %d (bit %d) kept the fingerprint", i, mutBit%64)
		}
	})
}

// bitCanon reduces a Piecewise to its bit-level canonical (start, value)
// pairs plus the final breakpoint — an independent re-implementation of the
// form the fingerprint hashes.
func bitCanon(p *Piecewise) ([]uint64, uint64) {
	xs, vs := p.Breakpoints(), p.Values()
	var out []uint64
	for i := range vs {
		if i > 0 && math.Float64bits(vs[i]) == math.Float64bits(vs[i-1]) {
			continue
		}
		out = append(out, math.Float64bits(xs[i]), math.Float64bits(vs[i]))
	}
	return out, math.Float64bits(xs[len(xs)-1])
}

// bitCanonEqual reports whether two functions share a bit-level canonical
// form.
func bitCanonEqual(a, b *Piecewise) bool {
	ac, ad := bitCanon(a)
	bc, bd := bitCanon(b)
	if ad != bd || len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

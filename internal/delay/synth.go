package delay

import (
	"math"

	"fnpr/internal/guard"
)

// This file provides the synthetic preemption-delay functions used in the
// paper's evaluation (Section VI, Figure 4), plus a few generic generators
// used by the wider test suite.

// Gaussian returns t -> offset + amp * exp(-(t-mu)^2 / (2*sigma2)).
func Gaussian(amp, mu, sigma2, offset float64) func(float64) float64 {
	return func(t float64) float64 {
		d := t - mu
		return offset + amp*math.Exp(-d*d/(2*sigma2))
	}
}

// GaussianMix returns the sum of several Gaussian bells, clamped to cap when
// cap > 0 (the paper's benchmark functions all have a stated maximum value).
func GaussianMix(cap float64, bells ...func(float64) float64) func(float64) float64 {
	return func(t float64) float64 {
		var v float64
		for _, b := range bells {
			v += b(t)
		}
		if cap > 0 && v > cap {
			v = cap
		}
		return v
	}
}

// PaperC is the task execution time used throughout the paper's evaluation.
const PaperC = 4000

// paperEnvelopePieces is the sampling resolution used when lifting the
// smooth benchmark functions to piecewise-constant envelopes: one piece per
// time unit of the C=4000 domain keeps the envelope within a negligible
// distance of the true function.
const paperEnvelopePieces = 4000

// BenchmarkParams selects between the paper's literal function parameters
// and a visually calibrated variant.
//
// The paper's text gives sigma^2 = 300 and 3000, which at the t in [0,4000]
// scale produce near-needle bells, while its Figure 4 plots broad bells
// spanning the whole domain. Calibrated multiplies both variances by 100
// (sigma ~ 173 and ~ 548), matching the plotted shapes. Both variants
// reproduce the qualitative Figure 5 result; see EXPERIMENTS.md.
type BenchmarkParams struct {
	Sigma2A float64 // variance of Gaussian 1
	Sigma2B float64 // variance of Gaussian 2 and of the two-peak components
	Mu      float64 // centre of Gaussians 1 and 2
	Offset1 float64 // vertical offset of Gaussian 1
	Amp1    float64 // amplitude of Gaussian 1's bell on top of the offset
	Amp     float64 // amplitude of Gaussian 2 / two-peak components
	C       float64 // task execution time
}

// LiteralParams follows the paper's text: sigma^2 = 300 / 3000, mu = 2000,
// Gaussian 1 with a vertical offset of 10, all peaks at height 10 above
// their own baseline, C = 4000.
func LiteralParams() BenchmarkParams {
	return BenchmarkParams{
		Sigma2A: 300, Sigma2B: 3000, Mu: 2000,
		Offset1: 10, Amp1: 4, Amp: 10, C: PaperC,
	}
}

// CalibratedParams widens the variances by 100x so the bells match the
// shapes plotted in the paper's Figure 4.
func CalibratedParams() BenchmarkParams {
	p := LiteralParams()
	p.Sigma2A *= 100
	p.Sigma2B *= 100
	return p
}

// Gaussian1 is the paper's first benchmark function: a bell centred at mu
// with variance Sigma2A, riding on a vertical offset (the function never
// drops below Offset1, peaking at Offset1+Amp1 — the elevated curve of
// Figure 4). Because its floor is high everywhere, it is the benchmark on
// which Algorithm 1 gains least over the state of the art.
func (p BenchmarkParams) Gaussian1() *Piecewise {
	fn := Gaussian(p.Amp1, p.Mu, p.Sigma2A, p.Offset1)
	return MustUpperEnvelope(fn, p.C, paperEnvelopePieces, []float64{p.Mu})
}

// Gaussian2 is the paper's second benchmark: a wider bell with no offset,
// peaking at Amp (10 units).
func (p BenchmarkParams) Gaussian2() *Piecewise {
	fn := Gaussian(p.Amp, p.Mu, p.Sigma2B, 0)
	return MustUpperEnvelope(fn, p.C, paperEnvelopePieces, []float64{p.Mu})
}

// TwoLocalMax is the paper's third benchmark: two bells separated in time
// (centres at C/4 and 3C/4), clamped at Amp.
func (p BenchmarkParams) TwoLocalMax() *Piecewise {
	m1, m2 := p.C/4, 3*p.C/4
	fn := GaussianMix(p.Amp,
		Gaussian(p.Amp, m1, p.Sigma2B, 0),
		Gaussian(p.Amp, m2, p.Sigma2B, 0),
	)
	return MustUpperEnvelope(fn, p.C, paperEnvelopePieces, []float64{m1, m2})
}

// Benchmarks returns the paper's three benchmark functions keyed by the
// names used in Figures 4 and 5.
func (p BenchmarkParams) Benchmarks() map[string]*Piecewise {
	return map[string]*Piecewise{
		"Gaussian 1":      p.Gaussian1(),
		"Gaussian 2":      p.Gaussian2(),
		"2 local maximum": p.TwoLocalMax(),
	}
}

// BenchmarksAt is Benchmarks with an explicit envelope resolution (pieces
// per function) instead of the paper's default. This is the knob the kernel
// benchmarks sweep: the scan kernel's cost per Algorithm 1 window grows with
// the piece count while the indexed kernel stays logarithmic. Coarser
// envelopes dominate finer ones, so any resolution yields a sound (if less
// tight) bound.
func (p BenchmarkParams) BenchmarksAt(pieces int) (map[string]*Piecewise, error) {
	g1, err := UpperEnvelope(Gaussian(p.Amp1, p.Mu, p.Sigma2A, p.Offset1), p.C, pieces, []float64{p.Mu})
	if err != nil {
		return nil, err
	}
	g2, err := UpperEnvelope(Gaussian(p.Amp, p.Mu, p.Sigma2B, 0), p.C, pieces, []float64{p.Mu})
	if err != nil {
		return nil, err
	}
	m1, m2 := p.C/4, 3*p.C/4
	two, err := UpperEnvelope(GaussianMix(p.Amp,
		Gaussian(p.Amp, m1, p.Sigma2B, 0),
		Gaussian(p.Amp, m2, p.Sigma2B, 0),
	), p.C, pieces, []float64{m1, m2})
	if err != nil {
		return nil, err
	}
	return map[string]*Piecewise{
		"Gaussian 1":      g1,
		"Gaussian 2":      g2,
		"2 local maximum": two,
	}, nil
}

// BenchmarkOrder lists the benchmark names in the paper's plotting order.
func BenchmarkOrder() []string {
	return []string{"Gaussian 1", "Gaussian 2", "2 local maximum"}
}

// NewStep builds a piecewise function alternating between lo and hi over k
// equal pieces on [0, c], returning an error on invalid parameters. This is
// the library entry point; tests and fixtures may use Step instead.
func NewStep(lo, hi, c float64, k int) (*Piecewise, error) {
	if k <= 0 {
		return nil, guard.Invalidf("delay: step function needs k > 0 pieces, got %d", k)
	}
	xs := make([]float64, k+1)
	vs := make([]float64, k)
	for i := 0; i <= k; i++ {
		xs[i] = c * float64(i) / float64(k)
	}
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			vs[i] = hi
		} else {
			vs[i] = lo
		}
	}
	return NewPiecewise(xs, vs)
}

// Step is NewStep for tests and fixtures ONLY: it panics on invalid
// parameters so it can appear in composite literals. Library code must use
// NewStep and propagate the error.
func Step(lo, hi, c float64, k int) *Piecewise {
	p, err := NewStep(lo, hi, c, k)
	if err != nil {
		panic(err)
	}
	return p
}

// NewFrontLoaded models the motivating example of Section III: a task that
// loads a large working set (high delay early), processes it (delay decays),
// then computes on a small subset (low delay tail). It returns an error on
// invalid parameters; this is the library entry point.
func NewFrontLoaded(peak, tail, c float64) (*Piecewise, error) {
	return NewPiecewise(
		[]float64{0, c * 0.2, c * 0.35, c},
		[]float64{peak, (peak + tail) / 2, tail},
	)
}

// FrontLoaded is NewFrontLoaded for tests and fixtures ONLY: it panics on
// invalid parameters so it can appear in composite literals. Library code
// must use NewFrontLoaded and propagate the error.
func FrontLoaded(peak, tail, c float64) *Piecewise {
	p, err := NewFrontLoaded(peak, tail, c)
	if err != nil {
		panic(err)
	}
	return p
}

package delay_test

import (
	"fmt"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/delay"
)

func ExampleNewPiecewise() {
	f, _ := delay.NewPiecewise(
		[]float64{0, 10, 30},
		[]float64{5, 1},
	)
	fmt.Println(f.Eval(4), f.Eval(20))
	tmax, fmax := f.Max()
	fmt.Println(tmax, fmax)
	// Output:
	// 5 1
	// 0 5
}

// The complete Section IV pipeline: control-flow graph with memory accesses
// to a per-task preemption delay function.
func ExampleFromUCB() {
	g := cfg.New()
	load := g.AddSimple("load", 10, 10)
	compute := g.AddSimple("compute", 50, 60)
	reuse := g.AddSimple("reuse", 10, 15)
	g.MustEdge(load, compute)
	g.MustEdge(compute, reuse)

	cc := cache.Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 2}
	acc := cache.AccessMap{
		load:  {0, 1, 2, 3}, // load four lines
		reuse: {2, 3},       // reuse two of them at the end
	}
	ucb, _ := cache.AnalyzeUCB(g, acc, cc)
	off, _ := g.AnalyzeOffsets()
	f, _ := delay.FromUCB(off, ucb)

	// During the long compute phase only the two reused lines are
	// useful: a preemption there costs at most 2 lines x 2 time units.
	fmt.Println(f.Eval(30))
	// Output:
	// 4
}

func ExamplePiecewise_FirstReachDescending() {
	f := delay.Constant(3, 20)
	// First point x in [0, 10] where f(x) >= 10 - x: 3 >= 10-x at x = 7.
	x, ok := f.FirstReachDescending(0, 10, 10)
	fmt.Println(x, ok)
	// Output:
	// 7 true
}

func ExampleParseCompact() {
	f, _ := delay.ParseCompact("0:10=4,10:60=0.5")
	fmt.Println(f.Domain(), f.Eval(5), f.Eval(30))
	// Output:
	// 60 4 0.5
}

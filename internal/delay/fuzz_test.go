package delay

import (
	"math"
	"sort"
	"testing"
)

// FuzzFirstReachDescending cross-checks the analytic first-crossing query
// against dense sampling on fuzzer-chosen functions and query lines.
func FuzzFirstReachDescending(f *testing.F) {
	f.Add(10.0, 3.0, 7.0, 0.3, 15.0)
	f.Add(100.0, 0.0, 9.0, 0.8, 50.0)
	f.Add(42.0, 5.0, 5.0, 0.5, 30.0)
	f.Fuzz(func(t *testing.T, c, vLo, vHi, split, line float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 1 || c > 1e6 {
			t.Skip()
		}
		clampV := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0
			}
			if v > 1e6 {
				return 1e6
			}
			return v
		}
		vLo, vHi = clampV(vLo), clampV(vHi)
		if math.IsNaN(split) || split <= 0.01 || split >= 0.99 {
			t.Skip()
		}
		if math.IsNaN(line) || math.IsInf(line, 0) || math.Abs(line) > 1e7 {
			t.Skip()
		}
		p, err := NewPiecewise([]float64{0, c * split, c}, []float64{vLo, vHi})
		if err != nil {
			t.Skip()
		}
		x, ok := p.FirstReachDescending(0, c, line)
		if ok {
			if p.Eval(x) < line-x-1e-6 {
				t.Fatalf("returned %g does not satisfy f >= c-x: f=%g, line-x=%g", x, p.Eval(x), line-x)
			}
			// No sampled earlier point satisfies it strictly.
			for i := 0; i < 200; i++ {
				y := x * float64(i) / 200
				if y < x-1e-9 && p.Eval(y) >= line-y+1e-6 {
					t.Fatalf("earlier point %g satisfies f >= line-x before %g", y, x)
				}
			}
		} else {
			for i := 0; i <= 200; i++ {
				y := c * float64(i) / 200
				if p.Eval(y) >= line-y+1e-6 {
					t.Fatalf("missed satisfying point %g (f=%g, line-x=%g)", y, p.Eval(y), line-y)
				}
			}
		}
	})
}

// FuzzMaxOn cross-checks the interval maximum against dense sampling.
func FuzzMaxOn(f *testing.F) {
	f.Add(10.0, 3.0, 7.0, 0.3, 2.0, 8.0)
	f.Add(55.0, 1.0, 0.0, 0.6, 0.0, 55.0)
	f.Fuzz(func(t *testing.T, c, vLo, vHi, split, a, b float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 1 || c > 1e6 {
			t.Skip()
		}
		for _, v := range []float64{vLo, vHi, a, b} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e6 {
				t.Skip()
			}
		}
		if split <= 0.01 || split >= 0.99 || math.IsNaN(split) {
			t.Skip()
		}
		p, err := NewPiecewise([]float64{0, c * split, c}, []float64{vLo, vHi})
		if err != nil {
			t.Skip()
		}
		if b < a {
			a, b = b, a
		}
		tm, fm := p.MaxOn(a, b)
		if p.Eval(tm) != fm {
			t.Fatalf("argmax %g does not achieve reported max %g", tm, fm)
		}
		lo, hi := a, b
		if hi > c {
			hi = c
		}
		if lo > hi {
			lo = hi
		}
		for i := 0; i <= 100; i++ {
			y := lo + (hi-lo)*float64(i)/100
			if p.Eval(y) > fm+1e-9 {
				t.Fatalf("MaxOn(%g,%g)=%g below f(%g)=%g", a, b, fm, y, p.Eval(y))
			}
		}
	})
}

// FuzzIndexedEquivalence cross-checks the indexed kernel against the scan
// kernel bit for bit on fuzzer-chosen functions and queries: same Eval, same
// MaxOn maximizer and value, same FirstReachDescending crossing. Any one-ulp
// disagreement here would surface as a byte-level diff in golden outputs, so
// the comparison is exact equality, no tolerance.
func FuzzIndexedEquivalence(f *testing.F) {
	f.Add(40.0, 2.0, 7.0, 1.0, 5.0, 0.2, 0.5, 0.8, 3.0, 30.0, 25.0)
	f.Add(100.0, 0.0, 0.0, 4.0, 4.0, 0.1, 0.4, 0.9, 0.0, 100.0, 60.0)
	f.Add(7.5, 1.5, 1.5, 1.5, 0.25, 0.3, 0.6, 0.7, 2.0, 6.0, 8.0)
	f.Fuzz(func(t *testing.T, c, v1, v2, v3, v4, s1, s2, s3, a, b, line float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 1 || c > 1e6 {
			t.Skip()
		}
		for _, v := range []float64{v1, v2, v3, v4} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e6 {
				t.Skip()
			}
		}
		for _, s := range []float64{s1, s2, s3} {
			if math.IsNaN(s) || s <= 0 || s >= 1 {
				t.Skip()
			}
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Skip()
		}
		if math.IsNaN(line) || math.IsInf(line, 0) || math.Abs(line) > 1e7 {
			t.Skip()
		}
		xs := []float64{0, c * s1, c * s2, c * s3, c}
		sort.Float64s(xs)
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				t.Skip()
			}
		}
		p, err := NewPiecewise(xs, []float64{v1, v2, v3, v4})
		if err != nil {
			t.Skip()
		}
		ix := NewIndexed(p)
		probes := []float64{a, b, line}
		for _, x := range p.Breakpoints() {
			probes = append(probes, x,
				math.Nextafter(x, math.Inf(1)), math.Nextafter(x, math.Inf(-1)))
		}
		for _, x := range probes {
			if pe, ie := p.Eval(x), ix.Eval(x); pe != ie {
				t.Fatalf("Eval(%v): scan %v, indexed %v (f=%v)", x, pe, ie, p)
			}
		}
		for _, q := range [][2]float64{{a, b}, {b, a}, {0, c}, {a, a}} {
			pt, pv := p.MaxOn(q[0], q[1])
			it, iv := ix.MaxOn(q[0], q[1])
			if pt != it || pv != iv {
				t.Fatalf("MaxOn(%v,%v): scan (%v,%v), indexed (%v,%v) (f=%v)",
					q[0], q[1], pt, pv, it, iv, p)
			}
			px, pok := p.FirstReachDescending(q[0], q[1], line)
			ixx, iok := ix.FirstReachDescending(q[0], q[1], line)
			if pok != iok || (pok && px != ixx) {
				t.Fatalf("FirstReach(%v,%v,%v): scan (%v,%v), indexed (%v,%v) (f=%v)",
					q[0], q[1], line, px, pok, ixx, iok, p)
			}
		}
	})
}

// FuzzParseCompact asserts the compact-spec parser never panics and anything
// it accepts is a valid function.
func FuzzParseCompact(f *testing.F) {
	f.Add("0:5=2,5:20=0.5")
	f.Add("0:1=0")
	f.Add("0:5")
	f.Add("x")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseCompact(in)
		if err != nil {
			return
		}
		if p.Domain() <= 0 {
			t.Fatalf("accepted function with bad domain %g", p.Domain())
		}
		if v := p.Eval(p.Domain() / 2); v < 0 {
			t.Fatalf("accepted negative value %g", v)
		}
	})
}

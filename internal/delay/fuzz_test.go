package delay

import (
	"math"
	"testing"
)

// FuzzFirstReachDescending cross-checks the analytic first-crossing query
// against dense sampling on fuzzer-chosen functions and query lines.
func FuzzFirstReachDescending(f *testing.F) {
	f.Add(10.0, 3.0, 7.0, 0.3, 15.0)
	f.Add(100.0, 0.0, 9.0, 0.8, 50.0)
	f.Add(42.0, 5.0, 5.0, 0.5, 30.0)
	f.Fuzz(func(t *testing.T, c, vLo, vHi, split, line float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 1 || c > 1e6 {
			t.Skip()
		}
		clampV := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0
			}
			if v > 1e6 {
				return 1e6
			}
			return v
		}
		vLo, vHi = clampV(vLo), clampV(vHi)
		if math.IsNaN(split) || split <= 0.01 || split >= 0.99 {
			t.Skip()
		}
		if math.IsNaN(line) || math.IsInf(line, 0) || math.Abs(line) > 1e7 {
			t.Skip()
		}
		p, err := NewPiecewise([]float64{0, c * split, c}, []float64{vLo, vHi})
		if err != nil {
			t.Skip()
		}
		x, ok := p.FirstReachDescending(0, c, line)
		if ok {
			if p.Eval(x) < line-x-1e-6 {
				t.Fatalf("returned %g does not satisfy f >= c-x: f=%g, line-x=%g", x, p.Eval(x), line-x)
			}
			// No sampled earlier point satisfies it strictly.
			for i := 0; i < 200; i++ {
				y := x * float64(i) / 200
				if y < x-1e-9 && p.Eval(y) >= line-y+1e-6 {
					t.Fatalf("earlier point %g satisfies f >= line-x before %g", y, x)
				}
			}
		} else {
			for i := 0; i <= 200; i++ {
				y := c * float64(i) / 200
				if p.Eval(y) >= line-y+1e-6 {
					t.Fatalf("missed satisfying point %g (f=%g, line-x=%g)", y, p.Eval(y), line-y)
				}
			}
		}
	})
}

// FuzzMaxOn cross-checks the interval maximum against dense sampling.
func FuzzMaxOn(f *testing.F) {
	f.Add(10.0, 3.0, 7.0, 0.3, 2.0, 8.0)
	f.Add(55.0, 1.0, 0.0, 0.6, 0.0, 55.0)
	f.Fuzz(func(t *testing.T, c, vLo, vHi, split, a, b float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 1 || c > 1e6 {
			t.Skip()
		}
		for _, v := range []float64{vLo, vHi, a, b} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e6 {
				t.Skip()
			}
		}
		if split <= 0.01 || split >= 0.99 || math.IsNaN(split) {
			t.Skip()
		}
		p, err := NewPiecewise([]float64{0, c * split, c}, []float64{vLo, vHi})
		if err != nil {
			t.Skip()
		}
		if b < a {
			a, b = b, a
		}
		tm, fm := p.MaxOn(a, b)
		if p.Eval(tm) != fm {
			t.Fatalf("argmax %g does not achieve reported max %g", tm, fm)
		}
		lo, hi := a, b
		if hi > c {
			hi = c
		}
		if lo > hi {
			lo = hi
		}
		for i := 0; i <= 100; i++ {
			y := lo + (hi-lo)*float64(i)/100
			if p.Eval(y) > fm+1e-9 {
				t.Fatalf("MaxOn(%g,%g)=%g below f(%g)=%g", a, b, fm, y, p.Eval(y))
			}
		}
	})
}

// FuzzParseCompact asserts the compact-spec parser never panics and anything
// it accepts is a valid function.
func FuzzParseCompact(f *testing.F) {
	f.Add("0:5=2,5:20=0.5")
	f.Add("0:1=0")
	f.Add("0:5")
	f.Add("x")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseCompact(in)
		if err != nil {
			return
		}
		if p.Domain() <= 0 {
			t.Fatalf("accepted function with bad domain %g", p.Domain())
		}
		if v := p.Eval(p.Domain() / 2); v < 0 {
			t.Fatalf("accepted negative value %g", v)
		}
	})
}

package delay

import (
	"sync"

	"fnpr/internal/obs"
)

// The delay kernels sit below the guard scope (Function has no room for a
// per-call scope), so their instrumentation reports into the process-global
// registry and is gated on obs.Enabled(): an uninstrumented run pays one
// atomic bool load per query and nothing else. Queries accumulate plain local
// counters and flush once per call, never inside the bisection loop.

var (
	delayInstOnce sync.Once
	cIndexBuilds  *obs.Counter
	hIndexBuildNs *obs.Histogram
	cRechecks     *obs.Counter
	cBisections   *obs.Counter
)

// delayInstruments resolves the package-level instruments once; until
// obs.Enable() has been called every path using them is skipped entirely.
func delayInstruments() {
	delayInstOnce.Do(func() {
		r := obs.Default()
		cIndexBuilds = r.Counter("delay.index.builds")
		hIndexBuildNs = r.Histogram("delay.index.build_ns")
		cRechecks = r.Counter("delay.index.rechecks")
		cBisections = r.Counter("delay.index.bisections")
	})
}

// flushIndexBuild records one index construction of the given duration.
func flushIndexBuild(ns int64) {
	delayInstruments()
	cIndexBuilds.Inc()
	hIndexBuildNs.Observe(ns)
}

// flushIndexQuery records one FirstReachDescending call's exact re-checks and
// range-maximum bisections.
func flushIndexQuery(rechecks, bisections int64) {
	delayInstruments()
	cRechecks.Add(rechecks)
	cBisections.Add(bisections)
}

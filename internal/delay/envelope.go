package delay

import (
	"math"
	"sort"

	"fnpr/internal/guard"
)

// UpperEnvelope lifts an arbitrary continuous function fn on [0, c] to a
// piecewise-constant upper envelope with n equal pieces. The value of each
// piece is the maximum of fn at the piece endpoints and at any of the
// supplied modes (local-maximum locations) falling inside the piece; for
// functions whose local maxima are all listed in modes — e.g. Gaussian
// mixtures with well-separated components — the result dominates fn up to
// the function's variation within one piece, which vanishes as n grows.
//
// Running Algorithm 1 on an upper envelope of f yields a bound that is also
// valid for f itself (the algorithm's result is monotone in the function),
// so sampling is a sound way to feed smooth synthetic benchmarks to the
// analysis.
func UpperEnvelope(fn func(float64) float64, c float64, n int, modes []float64) (*Piecewise, error) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, guard.Invalidf("delay: invalid domain length %g", c)
	}
	if n <= 0 {
		return nil, guard.Invalidf("delay: need at least one piece")
	}
	sorted := append([]float64(nil), modes...)
	sort.Float64s(sorted)
	xs := make([]float64, n+1)
	vs := make([]float64, n)
	for i := 0; i <= n; i++ {
		xs[i] = c * float64(i) / float64(n)
	}
	for i := 0; i < n; i++ {
		lo, hi := xs[i], xs[i+1]
		v := math.Max(fn(lo), fn(hi))
		// Include any mode inside the piece.
		k := sort.SearchFloat64s(sorted, lo)
		for ; k < len(sorted) && sorted[k] <= hi; k++ {
			if m := fn(sorted[k]); m > v {
				v = m
			}
		}
		if v < 0 {
			v = 0
		}
		vs[i] = v
	}
	p, err := NewPiecewise(xs, vs)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// MustUpperEnvelope is UpperEnvelope that panics on error. It is for tests
// and fixtures whose parameters are compile-time constants ONLY; library code
// must call UpperEnvelope and propagate the error.
func MustUpperEnvelope(fn func(float64) float64, c float64, n int, modes []float64) *Piecewise {
	p, err := UpperEnvelope(fn, c, n, modes)
	if err != nil {
		panic(err)
	}
	return p
}

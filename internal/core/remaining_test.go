package core

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
)

func TestRemainingBoundBasics(t *testing.T) {
	f := delay.Constant(2, 100)
	// Preempted at progression 50 with Q=10: pays 2 now; remaining 50
	// units with first window 8. pnext: 8, 16, 24, 32, 40, 48 -> 6
	// further preemptions x 2 = 12. Total 14.
	b, err := RemainingBound(f, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if b != 14 {
		t.Fatalf("remaining = %g, want 14", b)
	}
}

func TestRemainingBoundValidation(t *testing.T) {
	f := delay.Constant(1, 10)
	if _, err := RemainingBound(nil, 5, 1); err == nil {
		t.Fatal("accepted nil function")
	}
	if _, err := RemainingBound(f, 5, -1); err == nil {
		t.Fatal("accepted negative progression")
	}
	if _, err := RemainingBound(f, 5, 10); err == nil {
		t.Fatal("accepted progression at domain end")
	}
}

func TestRemainingBoundDivergesWhenPaybackSwallowsWindow(t *testing.T) {
	f := delay.Constant(6, 100)
	b, err := RemainingBound(f, 5, 50) // f(p)=6 >= Q=5
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b, 1) {
		t.Fatalf("remaining = %g, want +Inf", b)
	}
}

// Soundness: replay scenarios whose first preemption is at a chosen
// progression p and verify the remaining delay paid from that point never
// exceeds RemainingBound.
func TestRemainingBoundSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 200; trial++ {
		c := 60 + r.Float64()*300
		maxV := 1 + r.Float64()*5
		q := maxV + 1 + r.Float64()*30
		f := randomPiecewise(r, c, maxV)
		// Pick a feasible first-preemption progression: the first
		// preemption can strike at any progression >= Q.
		if q >= c {
			continue
		}
		p := q + r.Float64()*(c-q)*0.9
		if p >= c {
			continue
		}
		bound, err := RemainingBound(f, q, p)
		if err != nil {
			t.Fatal(err)
		}
		// Adversarial continuation: after the preemption at execution
		// time e1 = p (no prior delay), subsequent strikes follow
		// greedy/random spacing.
		for k := 0; k < 10; k++ {
			s := Scenario{p}
			paid := f.Eval(p)
			e := p
			for {
				e += q * (1 + r.Float64()*0.5)
				prog := e - paid
				if prog >= c {
					break
				}
				s = append(s, e)
				paid += f.Eval(prog)
				if len(s) > 10000 {
					break
				}
			}
			run, err := s.Run(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if run.TotalDelay > bound+1e-9 {
				t.Fatalf("trial %d: continuation pays %g > remaining bound %g (p=%g, Q=%g, f=%v)",
					trial, run.TotalDelay, bound, p, q, f)
			}
		}
	}
}

// The remaining bound from progression just past Q is consistent with the
// whole-job bound: f(p) + suffix analysis never exceeds the full Algorithm 1
// total by more than the first charge's conservatism.
func TestRemainingBoundRelatesToFullBound(t *testing.T) {
	f := delay.FrontLoaded(3, 0.5, 100)
	q := 10.0
	full, err := UpperBound(f, q)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := RemainingBound(f, q, q)
	if err != nil {
		t.Fatal(err)
	}
	// A job preempted exactly at Q pays at most rem; the full bound
	// covers the same scenario family, so rem <= full + max f (the full
	// bound may have charged a different, smaller first window).
	_, maxF := f.Max()
	if rem > full+maxF+1e-9 {
		t.Fatalf("remaining %g not within full %g + max %g", rem, full, maxF)
	}
}

package core

import (
	"math/rand"
	"testing"

	"fnpr/internal/delay"
)

// randomPWL builds a random piecewise-linear delay function.
func randomPWL(r *rand.Rand, c, maxV float64) *delay.PiecewiseLinear {
	n := 2 + r.Intn(6)
	xs := make([]float64, n+1)
	ys := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		xs[i] = xs[i-1] + c/float64(n)*(0.5+r.Float64())
	}
	// Normalise the last breakpoint to c exactly.
	scale := c / xs[n]
	for i := range xs {
		xs[i] *= scale
	}
	for i := range ys {
		ys[i] = r.Float64() * maxV
	}
	p, err := delay.NewPiecewiseLinear(xs, ys)
	if err != nil {
		panic(err)
	}
	return p
}

// Algorithm 1 runs directly on piecewise-linear functions: the result is
// sound against adversarial scenarios and at least as tight as running on
// the function's piecewise-constant upper envelope.
func TestAlgorithm1OnPiecewiseLinear(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		c := 60 + r.Float64()*300
		maxV := 1 + r.Float64()*6
		q := maxV + 1 + r.Float64()*40
		f := randomPWL(r, c, maxV)

		bound, err := UpperBound(f, q)
		if err != nil {
			t.Fatal(err)
		}
		envBound, err := UpperBound(f.ToPiecewise(), q)
		if err != nil {
			t.Fatal(err)
		}
		if bound > envBound+1e-9 {
			t.Fatalf("trial %d: PWL bound %g above envelope bound %g", trial, bound, envBound)
		}

		_, greedy := GreedyScenario(f, q)
		if greedy.TotalDelay > bound+1e-9 {
			t.Fatalf("trial %d: greedy %g beats PWL bound %g (Q=%g)", trial, greedy.TotalDelay, bound, q)
		}
		_, peak := PeakSeekingScenario(f, q)
		if peak.TotalDelay > bound+1e-9 {
			t.Fatalf("trial %d: peak %g beats PWL bound %g (Q=%g)", trial, peak.TotalDelay, bound, q)
		}
		// Random jittered scenarios.
		for k := 0; k < 5; k++ {
			var s Scenario
			e := q + r.Float64()*q
			for e < c+bound+q {
				s = append(s, e)
				e += q * (1 + r.Float64())
			}
			run, err := s.Run(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if run.TotalDelay > bound+1e-9 {
				t.Fatalf("trial %d: random scenario %g beats PWL bound %g", trial, run.TotalDelay, bound)
			}
		}
	}
}

// A concrete case where the linear representation is strictly tighter than
// the constant envelope: a sawtooth whose envelope doubles every window's
// charge.
func TestPiecewiseLinearTighterThanEnvelope(t *testing.T) {
	xs := []float64{0, 25, 50, 75, 100}
	ys := []float64{0, 6, 0, 6, 0}
	f, err := delay.NewPiecewiseLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	q := 30.0
	pwl, err := UpperBound(f, q)
	if err != nil {
		t.Fatal(err)
	}
	env, err := UpperBound(f.ToPiecewise(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !(pwl < env) {
		t.Fatalf("expected strict improvement: PWL %g vs envelope %g", pwl, env)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
)

func TestUpperBoundLimitedBasics(t *testing.T) {
	f := delay.Constant(2, 100)
	full, _ := UpperBound(f, 10) // 12 iterations x 2 = 24
	// Unlimited.
	b, err := UpperBoundLimited(f, 10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if b != full {
		t.Fatalf("unlimited = %g, want %g", b, full)
	}
	// More than the iteration count: same as full.
	b, _ = UpperBoundLimited(f, 10, 100)
	if b != full {
		t.Fatalf("n=100 = %g, want %g", b, full)
	}
	// Three preemptions max: 3 x 2 = 6.
	b, _ = UpperBoundLimited(f, 10, 3)
	if b != 6 {
		t.Fatalf("n=3 = %g, want 6", b)
	}
	// Zero preemptions: zero delay.
	b, _ = UpperBoundLimited(f, 10, 0)
	if b != 0 {
		t.Fatalf("n=0 = %g, want 0", b)
	}
}

func TestUpperBoundLimitedPicksLargestCharges(t *testing.T) {
	// One expensive region: the n-largest refinement keeps the expensive
	// charges, so it must dominate any scenario but stay below n*max
	// when cheaper windows dominate... here charges are 5 (peak window)
	// and ~0 elsewhere.
	f, err := delay.NewPiecewise([]float64{0, 48, 52, 200}, []float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := UpperBound(f, 20)
	b, _ := UpperBoundLimited(f, 20, 1)
	if b != 5 {
		t.Fatalf("n=1 = %g, want 5 (the single peak charge)", b)
	}
	if full < b {
		t.Fatalf("full %g below limited %g", full, b)
	}
}

func TestUpperBoundLimitedDivergentFallsBack(t *testing.T) {
	f := delay.Constant(10, 100) // delay == Q: divergent
	b, err := UpperBoundLimited(f, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b != 30 {
		t.Fatalf("divergent n=3 = %g, want 30 (n x max)", b)
	}
	b, _ = UpperBoundLimited(f, 10, -1)
	if !math.IsInf(b, 1) {
		t.Fatalf("divergent unlimited = %g, want +Inf", b)
	}
}

func TestUpperBoundLimitedValidation(t *testing.T) {
	if _, err := UpperBoundLimited(nil, 10, 3); err == nil {
		t.Fatal("accepted nil function")
	}
	if _, err := UpperBoundLimited(delay.Constant(1, 10), 0, 3); err == nil {
		t.Fatal("accepted Q=0")
	}
}

// Soundness: scenarios with at most n preemptions never exceed the limited
// bound. Adversaries: greedy truncated to n, peak-seeking truncated to n,
// and random n-subsets of valid instants.
func TestUpperBoundLimitedSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	for trial := 0; trial < 300; trial++ {
		c := 50 + r.Float64()*400
		maxV := 1 + r.Float64()*8
		q := maxV + 0.5 + r.Float64()*40
		f := randomPiecewise(r, c, maxV)
		n := r.Intn(5)
		bound, err := UpperBoundLimited(f, q, n)
		if err != nil {
			t.Fatal(err)
		}
		check := func(s Scenario, label string) {
			if len(s) > n {
				s = s[:n]
			}
			run, err := s.Run(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if run.TotalDelay > bound+1e-9 {
				t.Fatalf("trial %d: %s scenario with %d preemptions pays %g > limited bound %g (n=%d, Q=%g, f=%v)",
					trial, label, run.Preemptions, run.TotalDelay, bound, n, q, f)
			}
		}
		g, _ := GreedyScenario(f, q)
		check(g, "greedy")
		p, _ := PeakSeekingScenario(f, q)
		check(p, "peak")
		for k := 0; k < 10; k++ {
			var s Scenario
			e := q + r.Float64()*q
			for len(s) < n && e < c+100 {
				s = append(s, e)
				e += q + r.Float64()*q
			}
			check(s, "random")
		}
	}
}

// The limited bound is monotone in n and never exceeds the full bound.
func TestUpperBoundLimitedMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		c := 50 + r.Float64()*300
		maxV := 1 + r.Float64()*6
		q := maxV + 1 + r.Float64()*30
		f := randomPiecewise(r, c, maxV)
		full, _ := UpperBound(f, q)
		prev := 0.0
		for n := 0; n <= 8; n++ {
			b, err := UpperBoundLimited(f, q, n)
			if err != nil {
				t.Fatal(err)
			}
			if b < prev-1e-12 {
				t.Fatalf("trial %d: bound decreased from %g to %g at n=%d", trial, prev, b, n)
			}
			if b > full+1e-12 {
				t.Fatalf("trial %d: limited bound %g exceeds full %g", trial, b, full)
			}
			if _, maxF := f.Max(); b > float64(n)*maxF+1e-9 {
				t.Fatalf("trial %d: limited bound %g exceeds n*max %g", trial, b, float64(n)*maxF)
			}
			prev = b
		}
	}
}

func TestPreemptionCount(t *testing.T) {
	n, err := PreemptionCount(50, []float64{10, 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // ceil(50/10)=5 + ceil(50/25)=2
		t.Fatalf("count = %d, want 7", n)
	}
	n, err = PreemptionCount(50, []float64{10}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 { // ceil(55/10)
		t.Fatalf("count with jitter = %d, want 6", n)
	}
	if _, err := PreemptionCount(50, []float64{0}, nil); err == nil {
		t.Fatal("accepted zero period")
	}
	if _, err := PreemptionCount(-1, []float64{10}, nil); err == nil {
		t.Fatal("accepted negative response time")
	}
	if _, err := PreemptionCount(10, []float64{10, 20}, []float64{1}); err == nil {
		t.Fatal("accepted mismatched jitters")
	}
}

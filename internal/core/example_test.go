package core_test

import (
	"fmt"

	"fnpr/internal/core"
	"fnpr/internal/delay"
)

// The motivating example of Section III: a task that loads a working set
// (expensive to preempt), processes it, then computes on a small subset
// (cheap to preempt).
func ExampleAnalyze() {
	f, _ := delay.NewPiecewise(
		[]float64{0, 20, 35, 100}, // C = 100
		[]float64{12, 6, 1},
	)
	bound, _ := core.Analyze(nil, f, 25, core.Options{}) // Q = 25
	soa, _ := core.Analyze(nil, f, 25, core.Options{Method: core.Equation4})
	fmt.Printf("Algorithm 1: %.0f\n", bound.TotalDelay)
	fmt.Printf("Equation 4:  %.0f\n", soa.TotalDelay)
	// Output:
	// Algorithm 1: 9
	// Equation 4:  96
}

func ExampleAnalyze_trace() {
	f := delay.Constant(2, 50)
	res, _ := core.Analyze(nil, f, 10, core.Options{Trace: true})
	fmt.Printf("%d preemptions charged, total %.0f, C' = %.0f\n",
		res.Preemptions, res.TotalDelay, res.EffectiveWCET(50))
	// Output:
	// 5 preemptions charged, total 10, C' = 60
}

func ExampleAnalyze_limited() {
	f := delay.Constant(2, 100)
	full, _ := core.Analyze(nil, f, 10, core.Options{})
	limited, _ := core.Analyze(nil, f, 10, core.Options{Limited: true, MaxPreemptions: 3})
	fmt.Printf("unlimited: %.0f, at most 3 preemptions: %.0f\n",
		full.TotalDelay, limited.TotalDelay)
	// Output:
	// unlimited: 24, at most 3 preemptions: 6
}

func ExampleGreedyScenario() {
	f := delay.Constant(2, 50)
	_, run := core.GreedyScenario(f, 10)
	bound, _ := core.Analyze(nil, f, 10, core.Options{})
	fmt.Printf("simulated %.0f <= bound %.0f\n", run.TotalDelay, bound.TotalDelay)
	// Output:
	// simulated 10 <= bound 10
}

package core_test

import (
	"fmt"

	"fnpr/internal/core"
	"fnpr/internal/delay"
)

// The motivating example of Section III: a task that loads a working set
// (expensive to preempt), processes it, then computes on a small subset
// (cheap to preempt).
func ExampleUpperBound() {
	f, _ := delay.NewPiecewise(
		[]float64{0, 20, 35, 100}, // C = 100
		[]float64{12, 6, 1},
	)
	bound, _ := core.UpperBound(f, 25) // Q = 25
	soa, _ := core.StateOfTheArt(f, 25)
	fmt.Printf("Algorithm 1: %.0f\n", bound)
	fmt.Printf("Equation 4:  %.0f\n", soa)
	// Output:
	// Algorithm 1: 9
	// Equation 4:  96
}

func ExampleUpperBoundTrace() {
	f := delay.Constant(2, 50)
	res, _ := core.UpperBoundTrace(f, 10)
	fmt.Printf("%d preemptions charged, total %.0f, C' = %.0f\n",
		res.Preemptions, res.TotalDelay, res.EffectiveWCET(50))
	// Output:
	// 5 preemptions charged, total 10, C' = 60
}

func ExampleUpperBoundLimited() {
	f := delay.Constant(2, 100)
	full, _ := core.UpperBound(f, 10)
	limited, _ := core.UpperBoundLimited(f, 10, 3) // at most 3 preemptions
	fmt.Printf("unlimited: %.0f, at most 3 preemptions: %.0f\n", full, limited)
	// Output:
	// unlimited: 24, at most 3 preemptions: 6
}

func ExampleGreedyScenario() {
	f := delay.Constant(2, 50)
	_, run := core.GreedyScenario(f, 10)
	bound, _ := core.UpperBound(f, 10)
	fmt.Printf("simulated %.0f <= bound %.0f\n", run.TotalDelay, bound)
	// Output:
	// simulated 10 <= bound 10
}

package core

import (
	"fmt"
	"strings"

	"fnpr/internal/delay"
)

// String renders the result with its iteration trace as a table, the
// programmatic counterpart of walking Figure 3 of the paper step by step.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total delay %.4f over %d preemptions", r.TotalDelay, r.Preemptions)
	if r.Diverged {
		b.WriteString(" (DIVERGED)")
	}
	b.WriteString("\n")
	if len(r.Iterations) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%5s %12s %12s %12s %12s %12s %12s\n",
		"iter", "prog", "p∩", "pmax", "delaymax", "pnext", "total")
	for i, it := range r.Iterations {
		fmt.Fprintf(&b, "%5d %12.4f %12.4f %12.4f %12.4f %12.4f %12.4f\n",
			i+1, it.Prog, it.PIntersect, it.PMax, it.DelayMax, it.PNext, it.Total)
	}
	return b.String()
}

// QSweep holds the outcome of sweeping Algorithm 1 and Equation 4 over a
// set of NPR lengths — the computation behind one curve pair of Figure 5.
type QSweep struct {
	Q          []float64
	Algorithm1 []float64
	Equation4  []float64
}

// SweepQ evaluates both bounds for every Q in qs.
func SweepQ(f delay.Function, qs []float64) (*QSweep, error) {
	out := &QSweep{Q: append([]float64(nil), qs...)}
	for _, q := range qs {
		alg, err := Analyze(nil, f, q, Options{})
		if err != nil {
			return nil, err
		}
		soa, err := Analyze(nil, f, q, Options{Method: Equation4})
		if err != nil {
			return nil, err
		}
		out.Algorithm1 = append(out.Algorithm1, alg.TotalDelay)
		out.Equation4 = append(out.Equation4, soa.TotalDelay)
	}
	return out, nil
}

// MaxGain returns the largest Equation4/Algorithm1 ratio across the sweep
// and the Q at which it occurs (ignoring points where either diverged or
// the Algorithm 1 bound is zero).
func (s *QSweep) MaxGain() (q, gain float64) {
	for i := range s.Q {
		a, e := s.Algorithm1[i], s.Equation4[i]
		if a <= 0 || e <= 0 || isInf(a) || isInf(e) {
			continue
		}
		if g := e / a; g > gain {
			gain, q = g, s.Q[i]
		}
	}
	return q, gain
}

func isInf(v float64) bool { return v > 1e308 }

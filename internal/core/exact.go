package core

import (
	"math"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// ExactWorstCase computes the exact worst-case cumulative preemption delay
// of a job under FNPR semantics by exhaustive search over normalised
// scenarios — an oracle for measuring how tight Algorithm 1's bound is on
// small instances (it is exponential in the worst case and guarded by a
// node budget).
//
// Normalisation: for piecewise-constant f, any scenario can be transformed,
// without reducing its total delay, so that every preemption strikes either
// (a) as early as the spacing constraint allows (execution time exactly Q
// after the previous preemption), or (b) at the first instant its
// progression enters some later piece of f. Proof sketch: moving a
// preemption earlier within the same piece preserves its charge f(prog) and
// only relaxes the spacing constraint on all later preemptions; therefore a
// worst-case scenario exists in which each preemption is left-aligned either
// to the spacing boundary or to a piece start. The search branches over
// exactly these candidates.
// The search runs under the guard scope g (nil-safe), charging one guard
// step per explored node in addition to the local node budget.
func ExactWorstCase(g *guard.Ctx, f *delay.Piecewise, q float64, maxNodes int) (float64, error) {
	if f == nil {
		return 0, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	if err := g.Err(); err != nil {
		return 0, err
	}
	c := f.Domain()
	_, maxF := f.Max()
	if maxF >= q {
		// The adversary can stall progression forever: unbounded.
		return math.Inf(1), nil
	}
	starts := f.Breakpoints()
	nodes := 0
	var best float64

	// search explores scenarios from the state "last preemption at
	// execution time e with total paid delay d" and returns the best
	// additional delay obtainable. earliestProg is the progression at the
	// earliest admissible next strike.
	var search func(earliestProg, paid float64) (float64, error)
	search = func(earliestProg, paid float64) (float64, error) {
		nodes++
		if nodes > maxNodes {
			return 0, guard.Budgetf("core: exact search exceeded %d nodes", maxNodes)
		}
		if err := g.Tick(); err != nil {
			return 0, err
		}
		var bestHere float64 // stopping (no further preemption) = 0
		try := func(prog float64) error {
			if prog >= c-completionTol(c, prog+paid) {
				return nil // job finishes before this strike
			}
			d := f.Eval(prog)
			rest, err := search(prog+q-d, paid+d)
			if err != nil {
				return err
			}
			if d+rest > bestHere {
				bestHere = d + rest
			}
			return nil
		}
		if err := try(earliestProg); err != nil {
			return 0, err
		}
		for _, s := range starts {
			if s > earliestProg && s < c {
				if err := try(s); err != nil {
					return 0, err
				}
			}
		}
		return bestHere, nil
	}
	// First preemption: progression >= Q (no delay paid yet).
	v, err := search(q, 0)
	if err != nil {
		return 0, err
	}
	best = v
	return best, nil
}

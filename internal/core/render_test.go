package core

import (
	"strings"
	"testing"

	"fnpr/internal/delay"
)

func TestResultString(t *testing.T) {
	f := delay.Constant(2, 100)
	r, err := UpperBoundTrace(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"total delay", "preemptions", "pmax", "iter"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	// Divergent result is flagged.
	rd, _ := UpperBoundTrace(delay.Constant(10, 100), 10)
	if !strings.Contains(rd.String(), "DIVERGED") {
		t.Fatal("divergence not flagged in rendering")
	}
	// Empty trace renders without the table.
	re, _ := UpperBoundTrace(delay.Constant(1, 5), 10)
	if strings.Contains(re.String(), "iter ") {
		t.Fatal("empty trace should omit the table")
	}
}

func TestSweepQ(t *testing.T) {
	f := delay.FrontLoaded(4, 0.5, 100)
	s, err := SweepQ(f, []float64{10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Algorithm1) != 3 || len(s.Equation4) != 3 {
		t.Fatalf("sweep shape wrong: %+v", s)
	}
	for i := range s.Q {
		if s.Algorithm1[i] > s.Equation4[i]+1e-9 {
			t.Fatalf("dominance violated at Q=%g", s.Q[i])
		}
	}
	if _, err := SweepQ(f, []float64{-1}); err == nil {
		t.Fatal("accepted negative Q")
	}
}

func TestMaxGain(t *testing.T) {
	f := delay.FrontLoaded(4, 0.5, 100)
	s, err := SweepQ(f, []float64{6, 10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	q, gain := s.MaxGain()
	if gain < 1 {
		t.Fatalf("gain = %g, want >= 1 (dominance)", gain)
	}
	found := false
	for _, qq := range s.Q {
		if qq == q {
			found = true
		}
	}
	if !found {
		t.Fatalf("reported Q %g not in sweep", q)
	}
}

func TestMaxGainSkipsDivergent(t *testing.T) {
	f := delay.Constant(8, 100)
	s, err := SweepQ(f, []float64{8, 20}) // Q=8 diverges (delay == Q)
	if err != nil {
		t.Fatal(err)
	}
	q, gain := s.MaxGain()
	if q == 8 {
		t.Fatal("MaxGain picked a divergent point")
	}
	if gain <= 0 {
		t.Fatalf("gain = %g, want positive from the finite point", gain)
	}
}

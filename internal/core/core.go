// Package core implements the paper's contribution: Algorithm 1, an upper
// bound on the cumulative preemption delay suffered by a task scheduled with
// floating non-preemptive regions (Section V), together with the
// state-of-the-art baseline it is compared against (Equation 4) and the
// naive point-selection bound shown unsound by Figure 2.
//
// # Model
//
// A task with isolated WCET C executes under floating non-preemptive region
// (FNPR) scheduling with region length Q: once a higher-priority job arrives,
// the task keeps the processor for at most Q more time units, so consecutive
// preemptions are at least Q apart in the task's execution time. A preemption
// occurring when the task has progressed t units into its operations costs at
// most f(t) additional execution time (the preemption delay function built by
// package delay).
//
// # Algorithm 1
//
// The bound walks through the task's execution window by window. With the
// current progression prog, it considers the descending line D(x) = prog+Q-x
// and finds p∩, the first point in [prog, prog+Q] where f reaches D; a
// preemption past p∩ would leave the progression short of that point, so it
// will be reconsidered by a later iteration and can be ignored now. The worst
// delay in [prog, p∩] is charged, and the guaranteed progression over the Q
// window is Q - delaymax. Theorem 1 of the paper proves the result is an
// upper bound for every feasible preemption scenario.
//
// Divergence: when the charged delay consumes the entire window
// (delaymax >= Q), no progression can be guaranteed and the bound diverges;
// the analysis then reports +Inf, exactly as Equation 4's fixpoint does when
// max f >= Q.
//
// # Entry point
//
// Analyze is the package's single entry point; Options selects the method
// (Algorithm 1, the Equation 4 baseline, the naive demonstration bound), the
// trace, the preemption-count refinement and the run-time remaining-delay
// refinement. The UpperBound*/StateOfTheArt*/NaivePointSelection*/
// RemainingBound* families below are deprecated wrappers kept for one PR.
package core

import (
	"math"
	"sort"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

// Epsilon guards the progression loop: a guaranteed progression per window
// below this threshold is treated as divergence.
const epsilon = 1e-9

// maxIterations caps the iteration count of both Algorithm 1 and the
// Equation 4 fixpoint as a defence against pathological inputs; the bounds
// are reported as +Inf when exceeded.
const maxIterations = 50_000_000

// Iteration records one step of Algorithm 1 for inspection and plotting.
type Iteration struct {
	// Prog is the progression at the start of the iteration (the value
	// assigned from pnext on line 6 of Algorithm 1).
	Prog float64
	// PIntersect is p∩, the first point in [Prog, Prog+Q] where f
	// reaches the descending line; Prog+Q when there is no crossing.
	PIntersect float64
	// PMax is the earliest point of [Prog, PIntersect] attaining the
	// window's maximum delay.
	PMax float64
	// DelayMax is f(PMax), the delay charged by this iteration.
	DelayMax float64
	// PNext is the next progression point, Prog + Q - DelayMax.
	PNext float64
	// Total is the cumulative delay accounted after this iteration.
	Total float64
}

// Result carries the bound plus its per-iteration trace.
type Result struct {
	// TotalDelay is the upper bound on cumulative preemption delay
	// (+Inf when the analysis diverges because Q <= the local delay).
	TotalDelay float64
	// Preemptions is the number of preemptions charged (iterations).
	Preemptions int
	// Iterations is the step-by-step trace (only with Options.Trace).
	Iterations []Iteration
	// Diverged reports whether the analysis hit a zero-progress window.
	Diverged bool
	// Cached reports that this result was answered from Options.Memo rather
	// than computed. Runtime-only: excluded from every serialized form so
	// journals and API responses are byte-identical cache-on vs cache-off.
	Cached bool `json:"-"`
}

// EffectiveWCET returns C' = C + TotalDelay (Equation 5 of the paper); +Inf
// when the analysis diverged.
func (r Result) EffectiveWCET(c float64) float64 {
	return c + r.TotalDelay
}

// upperBoundFrom runs the Algorithm 1 loop with an explicit first candidate
// preemption point, used by Analyze (first = Q) and its remaining-delay mode
// (first = Q - pending payback). When trace is non-nil the per-iteration
// records are appended to it (reusing its capacity) and returned as
// Result.Iterations; a nil trace skips the bookkeeping entirely, making the
// walk allocation-free.
//
// Observability: iteration and kernel-query counts are accumulated in locals
// and flushed to the scope's counters once per return site, so the hot loop
// performs no atomic operations and the walk stays allocation-free whether or
// not a scope is attached (nil instruments make the flush a no-op).
//
// hints, when non-nil and f supports hinted crossing queries, seeds iteration
// k's descending-line search with hints.In[k] and records the pieces this
// walk produced into hints.Out — bit-identical to the unhinted walk, see
// WalkHints.
func upperBoundFrom(g *guard.Ctx, sc *obs.Scope, f delay.Function, q, first float64, trace *[]Iteration, hints *WalkHints) (Result, error) {
	if f == nil {
		return Result{}, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return Result{}, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return Result{}, guard.Invalidf("core: delay function has invalid domain %g", c)
	}
	if err := g.Err(); err != nil {
		return Result{}, err
	}

	sc.Counter("core.alg1.runs").Inc()
	itc := sc.Counter("core.alg1.iterations")
	qc := kernelQueryCounter(sc, f)
	var iters int64

	var res Result
	if first <= 0 {
		// The pending payback consumes the whole protected window:
		// a preemption can strike before any further progression and
		// the bound diverges.
		res.TotalDelay = math.Inf(1)
		res.Diverged = true
		sc.Counter("core.alg1.diverged").Inc()
		return res, nil
	}
	var hinter reachHinter
	if hints != nil {
		if h, ok := f.(reachHinter); ok {
			hinter = h
			hints.Out = hints.Out[:0]
		}
	}
	prog := 0.0
	pnext := first

	for pnext < c {
		if err := g.Tick(); err != nil {
			itc.Add(iters)
			qc.Add(2 * iters)
			return res, err
		}
		iters++
		prog = pnext

		// p∩: first crossing of f with D(x) = prog + Q - x on
		// [prog, prog+Q]; prog+Q when f stays below the line.
		var pIntersect float64
		var ok bool
		if hinter != nil {
			hint := -1
			if k := res.Preemptions; k < len(hints.In) {
				hint = int(hints.In[k])
			}
			var piece int
			pIntersect, ok, piece = hinter.FirstReachDescendingHint(prog, prog+q, prog+q, hint)
			if len(hints.Out) < maxHintPieces {
				hints.Out = append(hints.Out, int32(piece))
			}
		} else {
			pIntersect, ok = f.FirstReachDescending(prog, prog+q, prog+q)
		}
		if !ok {
			pIntersect = prog + q
		}

		pmax, delayMax := f.MaxOn(prog, pIntersect)
		pnext = prog + q - delayMax
		res.TotalDelay += delayMax
		res.Preemptions++
		if trace != nil {
			*trace = append(*trace, Iteration{
				Prog:       prog,
				PIntersect: pIntersect,
				PMax:       pmax,
				DelayMax:   delayMax,
				PNext:      pnext,
				Total:      res.TotalDelay,
			})
			res.Iterations = *trace
		}

		if q-delayMax <= epsilon {
			// The whole window can be consumed by delay: no
			// guaranteed progression, the bound diverges.
			res.TotalDelay = math.Inf(1)
			res.Diverged = true
			break
		}
		if res.Preemptions >= maxIterations {
			res.TotalDelay = math.Inf(1)
			res.Diverged = true
			break
		}
	}
	itc.Add(iters)
	qc.Add(2 * iters)
	if res.Diverged {
		sc.Counter("core.alg1.diverged").Inc()
	}
	return res, nil
}

// reachHinter is implemented by delay kernels whose descending-crossing
// search accepts a candidate piece index from a previous similar walk
// (currently *delay.Indexed). The scan kernel has no piece index to seed, so
// hinted walks silently degrade to the plain query there.
type reachHinter interface {
	FirstReachDescendingHint(a, b, c float64, hint int) (x float64, found bool, piece int)
}

// naivePointSelection computes the (unsound!) bound discussed at the top of
// Section V and refuted by Figure 2: select preemption points at least Q
// apart in *progression* maximising the sum of f. It underestimates the real
// worst case because time spent repaying delay lets the adversary fit more
// preemptions than progression-spacing suggests.
//
// The maximisation is performed by dynamic programming over a candidate grid
// containing every breakpoint of f plus shifted copies at multiples of Q, so
// for piecewise-constant f the result is exact. The DP charges one guard step
// per candidate point.
func naivePointSelection(g *guard.Ctx, f *delay.Piecewise, q float64) (float64, error) {
	if f == nil {
		return 0, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	// Candidate points: piece starts shifted by k*Q, clipped to [Q, C).
	// An optimal selection can always be normalised so each point is
	// either a piece start or exactly Q after the previous point, whose
	// chain bottoms out at a piece start or at Q.
	var candidates []float64
	seen := map[float64]bool{}
	add := func(x float64) {
		if x >= q && x < c && !seen[x] {
			seen[x] = true
			candidates = append(candidates, x)
		}
	}
	for _, s := range f.Breakpoints() {
		for x := s; x < c; x += q {
			add(x)
		}
	}
	for x := q; x < c; x += q {
		add(x)
	}
	const maxCandidates = 20000
	if len(candidates) > maxCandidates {
		return 0, guard.Budgetf("core: naive selection grid too large (%d candidates); this demonstration-only bound is meant for small functions", len(candidates))
	}
	sort.Float64s(candidates)
	n := len(candidates)
	if n == 0 {
		return 0, nil
	}
	// best[i] = max sum selecting candidate i last.
	best := make([]float64, n)
	ans := 0.0
	for i := 0; i < n; i++ {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		best[i] = f.Eval(candidates[i])
		for j := 0; j < i; j++ {
			if candidates[i]-candidates[j] >= q-1e-12 && best[j]+f.Eval(candidates[i]) > best[i] {
				best[i] = best[j] + f.Eval(candidates[i])
			}
		}
		if best[i] > ans {
			ans = best[i]
		}
	}
	return ans, nil
}

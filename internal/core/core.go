// Package core implements the paper's contribution: Algorithm 1, an upper
// bound on the cumulative preemption delay suffered by a task scheduled with
// floating non-preemptive regions (Section V), together with the
// state-of-the-art baseline it is compared against (Equation 4) and the
// naive point-selection bound shown unsound by Figure 2.
//
// # Model
//
// A task with isolated WCET C executes under floating non-preemptive region
// (FNPR) scheduling with region length Q: once a higher-priority job arrives,
// the task keeps the processor for at most Q more time units, so consecutive
// preemptions are at least Q apart in the task's execution time. A preemption
// occurring when the task has progressed t units into its operations costs at
// most f(t) additional execution time (the preemption delay function built by
// package delay).
//
// # Algorithm 1
//
// The bound walks through the task's execution window by window. With the
// current progression prog, it considers the descending line D(x) = prog+Q-x
// and finds p∩, the first point in [prog, prog+Q] where f reaches D; a
// preemption past p∩ would leave the progression short of that point, so it
// will be reconsidered by a later iteration and can be ignored now. The worst
// delay in [prog, p∩] is charged, and the guaranteed progression over the Q
// window is Q - delaymax. Theorem 1 of the paper proves the result is an
// upper bound for every feasible preemption scenario.
//
// Divergence: when the charged delay consumes the entire window
// (delaymax >= Q), no progression can be guaranteed and the bound diverges;
// UpperBound then returns +Inf, exactly as Equation 4's fixpoint does when
// max f >= Q.
package core

import (
	"math"
	"sort"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// Epsilon guards the progression loop: a guaranteed progression per window
// below this threshold is treated as divergence.
const epsilon = 1e-9

// maxIterations caps the iteration count of both Algorithm 1 and the
// Equation 4 fixpoint as a defence against pathological inputs; the bounds
// are reported as +Inf when exceeded.
const maxIterations = 50_000_000

// Iteration records one step of Algorithm 1 for inspection and plotting.
type Iteration struct {
	// Prog is the progression at the start of the iteration (the value
	// assigned from pnext on line 6 of Algorithm 1).
	Prog float64
	// PIntersect is p∩, the first point in [Prog, Prog+Q] where f
	// reaches the descending line; Prog+Q when there is no crossing.
	PIntersect float64
	// PMax is the earliest point of [Prog, PIntersect] attaining the
	// window's maximum delay.
	PMax float64
	// DelayMax is f(PMax), the delay charged by this iteration.
	DelayMax float64
	// PNext is the next progression point, Prog + Q - DelayMax.
	PNext float64
	// Total is the cumulative delay accounted after this iteration.
	Total float64
}

// Result carries the bound plus its per-iteration trace.
type Result struct {
	// TotalDelay is the upper bound on cumulative preemption delay
	// (+Inf when the analysis diverges because Q <= the local delay).
	TotalDelay float64
	// Preemptions is the number of preemptions charged (iterations).
	Preemptions int
	// Iterations is the step-by-step trace.
	Iterations []Iteration
	// Diverged reports whether the analysis hit a zero-progress window.
	Diverged bool
}

// EffectiveWCET returns C' = C + TotalDelay (Equation 5 of the paper); +Inf
// when the analysis diverged.
func (r Result) EffectiveWCET(c float64) float64 {
	return c + r.TotalDelay
}

// UpperBound runs Algorithm 1 on the preemption delay function f with
// non-preemptive region length Q and returns the bound on the cumulative
// preemption delay over one job whose isolated WCET is f.Domain().
func UpperBound(f delay.Function, q float64) (float64, error) {
	return UpperBoundCtx(nil, f, q)
}

// UpperBoundCtx is UpperBound under a guard scope: the Algorithm 1 walk
// charges one guard step per iteration, so it can be canceled, time-bounded
// and budget-bounded mid-analysis. A nil guard means no limits.
//
// This is the traceless fast path: no iteration records are kept, so the
// walk performs zero heap allocations — the property the batched sweeps of
// internal/eval rely on when they fan a whole Q grid over the worker pool.
func UpperBoundCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := upperBoundFrom(g, f, q, q, nil)
	if err != nil {
		return 0, err
	}
	return r.TotalDelay, nil
}

// UpperBoundTrace is UpperBound with the full iteration trace.
func UpperBoundTrace(f delay.Function, q float64) (Result, error) {
	return UpperBoundTraceCtx(nil, f, q)
}

// UpperBoundTraceCtx is UpperBoundTrace under a guard scope.
func UpperBoundTraceCtx(g *guard.Ctx, f delay.Function, q float64) (Result, error) {
	// Lines 1-4 of Algorithm 1: the first Q units of execution are
	// preemption-free, so the first candidate preemption point is Q.
	var trace []Iteration
	return upperBoundFrom(g, f, q, q, &trace)
}

// upperBoundFrom runs the Algorithm 1 loop with an explicit first candidate
// preemption point, used by the UpperBound variants (first = Q) and by
// RemainingBound (first = Q - pending payback). When trace is non-nil the
// per-iteration records are appended to it (reusing its capacity) and
// returned as Result.Iterations; a nil trace skips the bookkeeping entirely,
// making the walk allocation-free.
func upperBoundFrom(g *guard.Ctx, f delay.Function, q, first float64, trace *[]Iteration) (Result, error) {
	if f == nil {
		return Result{}, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return Result{}, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return Result{}, guard.Invalidf("core: delay function has invalid domain %g", c)
	}
	if err := g.Err(); err != nil {
		return Result{}, err
	}

	var res Result
	if first <= 0 {
		// The pending payback consumes the whole protected window:
		// a preemption can strike before any further progression and
		// the bound diverges.
		res.TotalDelay = math.Inf(1)
		res.Diverged = true
		return res, nil
	}
	prog := 0.0
	pnext := first

	for pnext < c {
		if err := g.Tick(); err != nil {
			return res, err
		}
		prog = pnext

		// p∩: first crossing of f with D(x) = prog + Q - x on
		// [prog, prog+Q]; prog+Q when f stays below the line.
		pIntersect, ok := f.FirstReachDescending(prog, prog+q, prog+q)
		if !ok {
			pIntersect = prog + q
		}

		pmax, delayMax := f.MaxOn(prog, pIntersect)
		pnext = prog + q - delayMax
		res.TotalDelay += delayMax
		res.Preemptions++
		if trace != nil {
			*trace = append(*trace, Iteration{
				Prog:       prog,
				PIntersect: pIntersect,
				PMax:       pmax,
				DelayMax:   delayMax,
				PNext:      pnext,
				Total:      res.TotalDelay,
			})
			res.Iterations = *trace
		}

		if q-delayMax <= epsilon {
			// The whole window can be consumed by delay: no
			// guaranteed progression, the bound diverges.
			res.TotalDelay = math.Inf(1)
			res.Diverged = true
			return res, nil
		}
		if res.Preemptions >= maxIterations {
			res.TotalDelay = math.Inf(1)
			res.Diverged = true
			return res, nil
		}
	}
	return res, nil
}

// StateOfTheArt computes the baseline bound of Equation 4: every possible
// preemption is charged the global maximum of f, and the preemption count is
// the fixpoint of
//
//	C'(0) = C;  C'(k) = C + ceil(C'(k-1)/Q) * max_t f(t)
//
// The returned value is the cumulative delay C' - C (so it is directly
// comparable with UpperBound); +Inf when the fixpoint diverges (max f >= Q).
func StateOfTheArt(f delay.Function, q float64) (float64, error) {
	return StateOfTheArtCtx(nil, f, q)
}

// StateOfTheArtCtx is StateOfTheArt under a guard scope.
func StateOfTheArtCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	if f == nil {
		return 0, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	_, maxF := f.MaxOn(0, c)
	return StateOfTheArtRawCtx(g, c, q, maxF)
}

// StateOfTheArtRaw is StateOfTheArt for callers that already know C and the
// maximum preemption delay.
func StateOfTheArtRaw(c, q, maxDelay float64) (float64, error) {
	return StateOfTheArtRawCtx(nil, c, q, maxDelay)
}

// StateOfTheArtRawCtx is StateOfTheArtRaw under a guard scope; the fixpoint
// charges one guard step per iteration.
func StateOfTheArtRawCtx(g *guard.Ctx, c, q, maxDelay float64) (float64, error) {
	if c <= 0 || q <= 0 || maxDelay < 0 ||
		math.IsNaN(c) || math.IsNaN(q) || math.IsNaN(maxDelay) ||
		math.IsInf(c, 0) || math.IsInf(q, 0) || math.IsInf(maxDelay, 0) {
		return 0, guard.Invalidf("core: invalid parameters C=%g Q=%g max=%g", c, q, maxDelay)
	}
	if maxDelay == 0 {
		return 0, nil
	}
	if maxDelay >= q {
		// Each iteration adds at least one extra preemption's worth of
		// delay per window: the fixpoint diverges.
		return math.Inf(1), nil
	}
	cur := c
	for i := 0; i < maxIterations; i++ {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		next := c + math.Ceil(cur/q)*maxDelay
		if next <= cur {
			return cur - c, nil
		}
		cur = next
	}
	return math.Inf(1), nil
}

// NaivePointSelection computes the (unsound!) bound discussed at the top of
// Section V and refuted by Figure 2: select preemption points at least Q
// apart in *progression* maximising the sum of f. It underestimates the real
// worst case because time spent repaying delay lets the adversary fit more
// preemptions than progression-spacing suggests. It is retained only to
// reproduce the paper's counter-example; never use it for analysis.
//
// The maximisation is performed by dynamic programming over a candidate grid
// containing every breakpoint of f plus shifted copies at multiples of Q, so
// for piecewise-constant f the result is exact.
func NaivePointSelection(f *delay.Piecewise, q float64) (float64, error) {
	return NaivePointSelectionCtx(nil, f, q)
}

// NaivePointSelectionCtx is NaivePointSelection under a guard scope; the DP
// charges one guard step per candidate point.
func NaivePointSelectionCtx(g *guard.Ctx, f *delay.Piecewise, q float64) (float64, error) {
	if f == nil {
		return 0, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	// Candidate points: piece starts shifted by k*Q, clipped to [Q, C).
	// An optimal selection can always be normalised so each point is
	// either a piece start or exactly Q after the previous point, whose
	// chain bottoms out at a piece start or at Q.
	var candidates []float64
	seen := map[float64]bool{}
	add := func(x float64) {
		if x >= q && x < c && !seen[x] {
			seen[x] = true
			candidates = append(candidates, x)
		}
	}
	for _, s := range f.Breakpoints() {
		for x := s; x < c; x += q {
			add(x)
		}
	}
	for x := q; x < c; x += q {
		add(x)
	}
	const maxCandidates = 20000
	if len(candidates) > maxCandidates {
		return 0, guard.Budgetf("core: naive selection grid too large (%d candidates); this demonstration-only bound is meant for small functions", len(candidates))
	}
	sort.Float64s(candidates)
	n := len(candidates)
	if n == 0 {
		return 0, nil
	}
	// best[i] = max sum selecting candidate i last.
	best := make([]float64, n)
	ans := 0.0
	for i := 0; i < n; i++ {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		best[i] = f.Eval(candidates[i])
		for j := 0; j < i; j++ {
			if candidates[i]-candidates[j] >= q-1e-12 && best[j]+f.Eval(candidates[i]) > best[i] {
				best[i] = best[j] + f.Eval(candidates[i])
			}
		}
		if best[i] > ans {
			ans = best[i]
		}
	}
	return ans, nil
}

// RemainingBound bounds the delay still ahead of a job that was just
// preempted at progression p: the current preemption's cost f(p) plus the
// cumulative cost of further preemptions over the remaining execution.
// The next preemption can strike Q execution-time units after the current
// one, of which f(p) are consumed repaying the current delay, so the first
// protected window of the suffix analysis shrinks to Q - f(p); when the
// payback swallows the whole window (f(p) >= Q) the bound diverges, exactly
// like the whole-job analysis with delay >= Q.
//
// This is the run-time refinement hook the paper's model enables: a
// scheduler that knows the observed preemption progression can re-bound the
// job's remaining WCET online.
func RemainingBound(f *delay.Piecewise, q, p float64) (float64, error) {
	return RemainingBoundCtx(nil, f, q, p)
}

// RemainingBoundCtx is RemainingBound under a guard scope.
func RemainingBoundCtx(g *guard.Ctx, f *delay.Piecewise, q, p float64) (float64, error) {
	if f == nil {
		return 0, guard.Invalidf("core: nil delay function")
	}
	c := f.Domain()
	if p < 0 || p >= c || math.IsNaN(p) {
		return 0, guard.Invalidf("core: progression %g outside [0, %g)", p, c)
	}
	current := f.Eval(p)
	suffix, err := f.Suffix(p)
	if err != nil {
		return 0, err
	}
	res, err := upperBoundFrom(g, suffix, q, q-current, nil)
	if err != nil {
		return 0, err
	}
	return current + res.TotalDelay, nil
}

package core

import (
	"context"
	"errors"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// fig2Function is the Figure 2 three-peak function: Algorithm 1 needs ~20
// iterations at Q=10 (each window advances the progression by 2), which makes
// it a good subject for budget and cancellation tests.
func fig2Function(t *testing.T) *delay.Piecewise {
	t.Helper()
	f, err := delay.NewPiecewise(
		[]float64{0, 10, 12, 19, 21, 28, 30, 40},
		[]float64{0, 8, 0, 8, 0, 8, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUpperBoundCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := guard.New(ctx)
	_, err := UpperBoundCtx(g, fig2Function(t), 10)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled context: got %v, want ErrCanceled", err)
	}
}

// TestUpperBoundCtxBudget verifies the walk stops mid-iteration when the step
// budget runs out: the error wraps ErrBudgetExceeded (no +Inf masquerading as
// a bound, no hang) and strictly fewer steps than a full run were charged.
func TestUpperBoundCtxBudget(t *testing.T) {
	f := fig2Function(t)

	full := guard.New(context.Background())
	if _, err := UpperBoundTraceCtx(full, f, 10); err != nil {
		t.Fatal(err)
	}
	if full.Steps() < 5 {
		t.Fatalf("full run charged only %d steps; fixture too small for a budget test", full.Steps())
	}

	g := guard.New(context.Background()).WithBudget(2)
	_, err := UpperBoundCtx(g, f, 10)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budget 2: got %v, want ErrBudgetExceeded", err)
	}
	if g.Steps() >= full.Steps() {
		t.Fatalf("budgeted run charged %d steps, full run %d: did not stop early", g.Steps(), full.Steps())
	}
}

func TestStateOfTheArtCtxBudget(t *testing.T) {
	g := guard.New(context.Background()).WithBudget(1)
	_, err := StateOfTheArtCtx(g, fig2Function(t), 10)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budget 1: got %v, want ErrBudgetExceeded", err)
	}
}

func TestExactWorstCaseCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := guard.New(ctx)
	_, err := ExactWorstCase(g, fig2Function(t), 10, 1_000_000)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled context: got %v, want ErrCanceled", err)
	}
}

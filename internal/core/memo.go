// Content-addressing for Analyze results: this file derives the cache key of
// an analysis request and supplies the codec that lets internal/memo persist
// Result values. The verify string is the full canonical identity — the
// delay function's fingerprint (internal/delay fingerprint.go) concatenated
// with the exact bit patterns of every option that can change the answer —
// and the primary key is a 64-bit FNV-1a fold of it. memo.Cache compares the
// verify string on every hit, so the fold only has to be fast, not
// collision-free (see the forced-collision test in memo_diff_test.go).
package core

import (
	"encoding/hex"
	"encoding/json"
	"math"
	"strconv"

	"fnpr/internal/delay"
	"fnpr/internal/memo"
)

// memoResultSize is the byte estimate charged per cached Result: the struct
// itself plus the interned verify string's share of the entry bookkeeping.
const memoResultSize = 128

// NewResultCache builds a memo.Cache wired with the Result codec, so cli and
// server construct caches that can Persist/Warm without reaching into this
// package's encoding.
func NewResultCache(opts memo.Options) *memo.Cache {
	opts.Codec = resultCodec
	return memo.New(opts)
}

// memoKeyFor derives (primary key, verify string) for an Analyze request.
// ok is false when the function has no canonical fingerprint (an ad-hoc
// Function implementation) — such requests bypass the cache entirely.
func memoKeyFor(f delay.Function, q float64, opts Options) (key uint64, verify string, ok bool) {
	fp, err := delay.FingerprintOf(f)
	if err != nil {
		return 0, "", false
	}
	// The identity bytes: fingerprint, method, Q bits, then each refinement
	// with a presence byte so (Limited, MaxPreemptions=0) never aliases
	// (unlimited) and (Remaining, From=0) never aliases (whole-job).
	b := make([]byte, 0, delay.FingerprintSize+32)
	b = append(b, fp[:]...)
	b = append(b, byte(opts.Method))
	b = appendBits(b, math.Float64bits(q))
	if opts.Limited {
		b = append(b, 1)
		b = appendBits(b, uint64(opts.MaxPreemptions))
	} else {
		b = append(b, 0)
	}
	if opts.Remaining {
		b = append(b, 1)
		b = appendBits(b, math.Float64bits(opts.From))
	} else {
		b = append(b, 0)
	}
	verify = hex.EncodeToString(b)
	return memoPrimaryKey(verify), verify, true
}

// memoPrimaryKey folds a verify string to the cache's 64-bit primary key.
// A package variable so the collision-safety test can pin it to a constant
// and prove that two colliding requests still get their own results.
var memoPrimaryKey = fnv64a

// fnv64a is the 64-bit FNV-1a hash (inlined to keep the per-request cost at
// one pass over the string with no hasher allocation).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// appendBits appends v little-endian.
func appendBits(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// resultJSON is the persisted encoding of a Result. TotalDelay travels as a
// JSON number for finite values and as the strings "NaN" / "+Inf" / "-Inf"
// otherwise, exactly like eval's sweepPointJSON — a diverged bound is +Inf
// and encoding/json rejects non-finite floats. Finite values use the
// shortest-roundtrip form, so a warmed entry answers with the same bits the
// original run computed. Traces are never cached (Analyze skips the cache
// for traced calls), so Iterations has no encoding.
type resultJSON struct {
	TotalDelay  json.RawMessage `json:"total_delay"`
	Preemptions int             `json:"preemptions"`
	Diverged    bool            `json:"diverged,omitempty"`
}

// resultCodec is the memo.Codec for Result values.
var resultCodec = &memo.Codec{
	Name: "fnpr-core-result/1",
	Encode: func(v any) (json.RawMessage, error) {
		res := v.(Result)
		var td json.RawMessage
		switch {
		case math.IsNaN(res.TotalDelay):
			td = json.RawMessage(`"NaN"`)
		case math.IsInf(res.TotalDelay, 1):
			td = json.RawMessage(`"+Inf"`)
		case math.IsInf(res.TotalDelay, -1):
			td = json.RawMessage(`"-Inf"`)
		default:
			td = json.RawMessage(strconv.AppendFloat(nil, res.TotalDelay, 'g', -1, 64))
		}
		return json.Marshal(resultJSON{
			TotalDelay:  td,
			Preemptions: res.Preemptions,
			Diverged:    res.Diverged,
		})
	},
	Decode: func(data json.RawMessage) (any, int64, error) {
		var enc resultJSON
		if err := json.Unmarshal(data, &enc); err != nil {
			return nil, 0, err
		}
		res := Result{Preemptions: enc.Preemptions, Diverged: enc.Diverged}
		var s string
		if err := json.Unmarshal(enc.TotalDelay, &s); err == nil {
			switch s {
			case "NaN":
				res.TotalDelay = math.NaN()
			case "+Inf":
				res.TotalDelay = math.Inf(1)
			case "-Inf":
				res.TotalDelay = math.Inf(-1)
			default:
				return nil, 0, errUnknownSpecial(s)
			}
		} else if err := json.Unmarshal(enc.TotalDelay, &res.TotalDelay); err != nil {
			return nil, 0, err
		}
		return res, memoResultSize, nil
	},
}

// errUnknownSpecial rejects a non-finite marker the codec does not know.
type errUnknownSpecial string

func (e errUnknownSpecial) Error() string {
	return "core: unknown non-finite total_delay marker " + strconv.Quote(string(e))
}

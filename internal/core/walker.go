package core

import (
	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// Walker runs Algorithm 1 repeatedly without per-run heap allocations by
// reusing one iteration-trace buffer across runs — the companion of the
// indexed delay kernel for tight analysis loops (a Q sweep re-walking the
// same task, a response-time fixpoint re-bounding a task per iteration).
//
// A Walker is NOT safe for concurrent use: each sweep worker owns its own.
// The traceless Analyze needs no Walker at all — it is already
// allocation-free.
type Walker struct {
	buf []Iteration
}

// UpperBound is the traceless, allocation-free Algorithm 1 bound. It exists
// on Walker so call sites holding a Walker can stay uniform.
func (w *Walker) UpperBound(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{})
	return r.TotalDelay, err
}

// Trace is Analyze with Options.Trace and the iteration records written into
// the Walker's reusable buffer: after the buffer has grown to the steady
// size, subsequent runs allocate nothing. The returned Result.Iterations
// aliases the buffer and is only valid until the next call on this Walker;
// callers that need to keep a trace must copy it.
func (w *Walker) Trace(g *guard.Ctx, f delay.Function, q float64) (Result, error) {
	w.buf = w.buf[:0]
	return Analyze(g, f, q, Options{Trace: true, buf: &w.buf})
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
)

func TestExactWorstCaseConstant(t *testing.T) {
	// f = 2, C = 50, Q = 10: strikes at progressions 10, 18, 26, 34, 42
	// -> 5 x 2 = 10, and that IS the worst case.
	f := delay.Constant(2, 50)
	exact, err := ExactWorstCase(nil, f, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 10 {
		t.Fatalf("exact = %g, want 10", exact)
	}
	alg, _ := UpperBound(f, 10)
	if exact > alg {
		t.Fatalf("exact %g above Algorithm 1 %g", exact, alg)
	}
}

func TestExactWorstCaseSinglePeak(t *testing.T) {
	// One narrow peak at [30,33): the worst case catches it exactly once.
	f, err := delay.NewPiecewise([]float64{0, 30, 33, 100}, []float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactWorstCase(nil, f, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 5 {
		t.Fatalf("exact = %g, want 5", exact)
	}
}

func TestExactWorstCaseDivergent(t *testing.T) {
	f := delay.Constant(10, 100)
	exact, err := ExactWorstCase(nil, f, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(exact, 1) {
		t.Fatalf("exact = %g, want +Inf", exact)
	}
}

func TestExactWorstCaseValidation(t *testing.T) {
	if _, err := ExactWorstCase(nil, nil, 10, 0); err == nil {
		t.Fatal("accepted nil function")
	}
	if _, err := ExactWorstCase(nil, delay.Constant(1, 10), 0, 0); err == nil {
		t.Fatal("accepted Q=0")
	}
}

func TestExactWorstCaseNodeBudget(t *testing.T) {
	// Many pieces and tiny Q relative to C blow up the search; the budget
	// must trip rather than hang.
	f := delay.Step(0.1, 0.9, 400, 16)
	if _, err := ExactWorstCase(nil, f, 2, 1000); err == nil {
		t.Fatal("expected node-budget error")
	}
}

// The oracle is sandwiched: every constructive adversary is at or below it,
// and Algorithm 1 is at or above it.
func TestExactSandwich(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		c := 40 + r.Float64()*60
		maxV := 0.5 + r.Float64()*3
		q := maxV + 4 + r.Float64()*20
		// Few pieces keep the search tractable.
		n := 2 + r.Intn(3)
		xs := []float64{0}
		for i := 1; i < n; i++ {
			xs = append(xs, xs[len(xs)-1]+c/float64(n)*(0.5+r.Float64()))
		}
		if xs[len(xs)-1] >= c {
			xs = []float64{0}
		}
		xs = append(xs, c)
		vs := make([]float64, len(xs)-1)
		for i := range vs {
			vs[i] = r.Float64() * maxV
		}
		f, err := delay.NewPiecewise(xs, vs)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactWorstCase(nil, f, q, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		alg, _ := UpperBound(f, q)
		if exact > alg+1e-9 {
			t.Fatalf("trial %d: exact %g above Algorithm 1 %g (Q=%g, f=%v)", trial, exact, alg, q, f)
		}
		_, greedy := GreedyScenario(f, q)
		if greedy.TotalDelay > exact+1e-9 {
			t.Fatalf("trial %d: greedy %g above exact %g (Q=%g, f=%v)", trial, greedy.TotalDelay, exact, q, f)
		}
		_, peak := PeakSeekingScenario(f, q)
		if peak.TotalDelay > exact+1e-9 {
			t.Fatalf("trial %d: peak %g above exact %g (Q=%g, f=%v)", trial, peak.TotalDelay, exact, q, f)
		}
	}
}

// On the paper's Figure 2 function the exact worst case exceeds the naive
// bound (quantifying the unsoundness) and Algorithm 1 covers it.
func TestExactQuantifiesFigure2(t *testing.T) {
	f, err := delay.NewPiecewise(
		[]float64{0, 10, 12, 19, 21, 28, 30, 40},
		[]float64{0, 8, 0, 8, 0, 8, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactWorstCase(nil, f, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := NaivePointSelection(f, 10)
	alg, _ := UpperBound(f, 10)
	if exact <= naive {
		t.Fatalf("exact %g not above naive %g — counter-example lost", exact, naive)
	}
	if exact > alg+1e-9 {
		t.Fatalf("exact %g above Algorithm 1 %g", exact, alg)
	}
	// The true worst case catches all three peaks: 24.
	if exact != 24 {
		t.Fatalf("exact = %g, want 24", exact)
	}
}

package core

import (
	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// This file holds the pre-Analyze entry-point ladder as thin wrappers. They
// survive exactly one PR as a deprecation window (DESIGN.md §10) so that
// out-of-tree callers get a compile-clean release with staticcheck warnings
// before the removal; nothing inside this repository calls them outside the
// tests that pin their equivalence to Analyze.

// UpperBound runs Algorithm 1 on the preemption delay function f with
// non-preemptive region length Q and returns the bound on the cumulative
// preemption delay over one job whose isolated WCET is f.Domain().
//
// Deprecated: use Analyze(nil, f, q, Options{}).
func UpperBound(f delay.Function, q float64) (float64, error) {
	return UpperBoundCtx(nil, f, q)
}

// UpperBoundCtx is UpperBound under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{}).
func UpperBoundCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{})
	return r.TotalDelay, err
}

// UpperBoundTrace is UpperBound with the full iteration trace.
//
// Deprecated: use Analyze(nil, f, q, Options{Trace: true}).
func UpperBoundTrace(f delay.Function, q float64) (Result, error) {
	return UpperBoundTraceCtx(nil, f, q)
}

// UpperBoundTraceCtx is UpperBoundTrace under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{Trace: true}).
func UpperBoundTraceCtx(g *guard.Ctx, f delay.Function, q float64) (Result, error) {
	return Analyze(g, f, q, Options{Trace: true})
}

// StateOfTheArt computes the baseline bound of Equation 4: every possible
// preemption is charged the global maximum of f, and the preemption count is
// the fixpoint of
//
//	C'(0) = C;  C'(k) = C + ceil(C'(k-1)/Q) * max_t f(t)
//
// The returned value is the cumulative delay C' - C (so it is directly
// comparable with Algorithm 1); +Inf when the fixpoint diverges (max f >= Q).
//
// Deprecated: use Analyze(nil, f, q, Options{Method: Equation4}).
func StateOfTheArt(f delay.Function, q float64) (float64, error) {
	return StateOfTheArtCtx(nil, f, q)
}

// StateOfTheArtCtx is StateOfTheArt under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{Method: Equation4}).
func StateOfTheArtCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{Method: Equation4})
	return r.TotalDelay, err
}

// StateOfTheArtRaw is StateOfTheArt for callers that already know C and the
// maximum preemption delay.
//
// Deprecated: use Eq4Fixpoint(nil, c, q, maxDelay).
func StateOfTheArtRaw(c, q, maxDelay float64) (float64, error) {
	return Eq4Fixpoint(nil, c, q, maxDelay)
}

// StateOfTheArtRawCtx is StateOfTheArtRaw under a guard scope; the fixpoint
// charges one guard step per iteration.
//
// Deprecated: use Eq4Fixpoint(g, c, q, maxDelay).
func StateOfTheArtRawCtx(g *guard.Ctx, c, q, maxDelay float64) (float64, error) {
	return Eq4Fixpoint(g, c, q, maxDelay)
}

// NaivePointSelection computes the unsound point-selection bound retained
// only to reproduce the paper's Figure 2 counter-example.
//
// Deprecated: use Analyze(nil, f, q, Options{Method: NaiveUnsound}).
func NaivePointSelection(f *delay.Piecewise, q float64) (float64, error) {
	return NaivePointSelectionCtx(nil, f, q)
}

// NaivePointSelectionCtx is NaivePointSelection under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{Method: NaiveUnsound}).
func NaivePointSelectionCtx(g *guard.Ctx, f *delay.Piecewise, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{Method: NaiveUnsound})
	return r.TotalDelay, err
}

// RemainingBound bounds the delay still ahead of a job that was just
// preempted at progression p: the current preemption's cost f(p) plus the
// cumulative cost of further preemptions over the remaining execution.
//
// Deprecated: use Analyze(nil, f, q, Options{Remaining: true, From: p}).
func RemainingBound(f *delay.Piecewise, q, p float64) (float64, error) {
	return RemainingBoundCtx(nil, f, q, p)
}

// RemainingBoundCtx is RemainingBound under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{Remaining: true, From: p}).
func RemainingBoundCtx(g *guard.Ctx, f *delay.Piecewise, q, p float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{Remaining: true, From: p})
	return r.TotalDelay, err
}

// UpperBoundLimited bounds the cumulative preemption delay of a job that can
// be preempted at most maxPreemptions times, under FNPR semantics with
// region length q. maxPreemptions < 0 means unlimited (plain Algorithm 1).
//
// Deprecated: use Analyze(nil, f, q, Options{Limited: true, MaxPreemptions: n}).
func UpperBoundLimited(f delay.Function, q float64, maxPreemptions int) (float64, error) {
	return UpperBoundLimitedCtx(nil, f, q, maxPreemptions)
}

// UpperBoundLimitedCtx is UpperBoundLimited under a guard scope.
//
// Deprecated: use Analyze(g, f, q, Options{Limited: true, MaxPreemptions: n}).
func UpperBoundLimitedCtx(g *guard.Ctx, f delay.Function, q float64, maxPreemptions int) (float64, error) {
	r, err := Analyze(g, f, q, Options{Limited: maxPreemptions >= 0, MaxPreemptions: maxPreemptions})
	return r.TotalDelay, err
}

package core

import (
	"fmt"
	"math"
)

// This file supports the refinement the paper lists as future work (ii)
// in Section VII: "reducing the number of preemptions (i.e., the number of
// iterations) considered in Algorithm 1 — it is indeed impossible for a
// task to get preempted every Qi time units ... unless the periods of the
// other tasks enable such a preemption scenario."
//
// When the environment can cause at most n preemptions of a job (e.g. n
// bounds the higher-priority releases within the job's response time), the
// cumulative delay is bounded by the sum of the n largest per-iteration
// charges of Algorithm 1 (Analyze with Options.Limited; the charge selection
// itself is limitCharges in analyze.go). The argument extends Theorem 1's
// induction: each scenario preemption is absorbed by exactly one algorithm
// iteration (case 2 of the proof), distinct preemptions by distinct
// iterations (two preemptions are >= Q apart on the job's execution clock
// while an iteration window spans Q execution time), and each absorbed
// preemption is charged at most that iteration's delaymax. With at most n
// preemptions, at most n iterations absorb anything, so the total is bounded
// by the n largest charges. The result is also trivially <= min(full
// Algorithm 1 bound, n x max f). The test suite validates the bound against
// adversarial scenarios restricted to n preemptions.

// PreemptionCount bounds the number of preemptions a job with response time
// r can suffer from higher-priority tasks with the given periods (and
// release jitters): at most one preemption per higher-priority release
// inside the response window.
func PreemptionCount(r float64, periods, jitters []float64) (int, error) {
	if len(jitters) != 0 && len(jitters) != len(periods) {
		return 0, fmt.Errorf("core: %d jitters for %d periods", len(jitters), len(periods))
	}
	if r < 0 || math.IsNaN(r) {
		return 0, fmt.Errorf("core: invalid response time %g", r)
	}
	var n float64
	for i, t := range periods {
		if t <= 0 {
			return 0, fmt.Errorf("core: invalid period %g", t)
		}
		j := 0.0
		if len(jitters) > 0 {
			j = jitters[i]
		}
		n += math.Ceil((r + j) / t)
	}
	if n > float64(math.MaxInt32) {
		return math.MaxInt32, nil
	}
	return int(n), nil
}

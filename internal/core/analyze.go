package core

import (
	"math"
	"sort"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
)

// Method selects which bound Analyze computes.
type Method int

const (
	// Algorithm1 is the paper's contribution (Section V): the default.
	Algorithm1 Method = iota
	// Equation4 is the state-of-the-art baseline: every possible preemption
	// charged the global maximum of f, preemption count from the fixpoint.
	Equation4
	// NaiveUnsound is the naive point-selection bound refuted by Figure 2.
	// It is retained only to reproduce the paper's counter-example; never
	// use it for analysis. Requires a piecewise-constant function.
	NaiveUnsound
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Algorithm1:
		return "algorithm1"
	case Equation4:
		return "equation4"
	case NaiveUnsound:
		return "naive"
	default:
		return "unknown"
	}
}

// Options configures one Analyze call. The zero value is the common case:
// the traceless, allocation-free Algorithm 1 bound over the whole job.
type Options struct {
	// Method selects the bound; Algorithm1 by default.
	Method Method

	// Trace records the per-iteration trace into Result.Iterations
	// (Algorithm1 only). The traceless walk allocates nothing.
	Trace bool

	// Limited applies the preemption-count refinement (Section VII future
	// work (ii), Algorithm1 only): with at most MaxPreemptions preemptions
	// the bound is the sum of the MaxPreemptions largest per-iteration
	// charges. MaxPreemptions may be 0 (no preemption can occur).
	Limited        bool
	MaxPreemptions int

	// Remaining switches to the run-time refinement (Algorithm1 only,
	// piecewise functions): bound the delay still ahead of a job just
	// preempted at progression From — the current preemption's cost f(From)
	// plus the suffix analysis whose first protected window shrinks by the
	// pending payback.
	Remaining bool
	From      float64

	// Solver selects the fixpoint strategy for the Equation 4 bound:
	// cutting-plane jumps with monotone fallback (SolverAuto, the default)
	// or the classic monotone iteration (SolverMonotone). Results are
	// bit-identical either way, so Solver is excluded from the Memo cache
	// key and cached results are shared across solvers.
	Solver Solver

	// Hints, when non-nil, seeds the Algorithm 1 walk's crossing search
	// from a previous similar walk and records this walk's crossings back
	// into Hints.Out — the cross-Q sharing hook used by eval.QSweep.
	// Purely an accelerator: results are bit-identical with any hints, so
	// Hints is excluded from the Memo cache key.
	Hints *WalkHints

	// Obs overrides the observability scope for this call; when nil the
	// scope attached to the guard (guard.Ctx.WithObs) is used. Metric names
	// are catalogued in DESIGN.md §10.
	Obs *obs.Scope

	// Memo, when non-nil, caches results content-addressed by the canonical
	// fingerprint of (f, q, options) — see memo.go and DESIGN.md §14. Only
	// traceless calls on fingerprintable functions consult it; everything
	// else computes as usual. Build the cache with NewResultCache so it can
	// persist across runs.
	Memo *memo.Cache

	// buf, when non-nil with Trace set, receives the iteration records in
	// place of a fresh slice — the Walker reuse hook.
	buf *[]Iteration
}

// Analyze is the single entry point of this package: it computes the selected
// preemption-delay bound for the delay function f under floating-NPR
// scheduling with region length q, under an optional guard scope g
// (cancellation, deadline, step budget — nil means no limits) and with
// observability threaded through (Algorithm 1 iteration counts, Equation 4
// fixpoint iterations and kernel query counts flow into the scope's
// registry).
//
// It replaces the UpperBound / UpperBoundCtx / UpperBoundTrace /
// UpperBoundTraceCtx, StateOfTheArt*, NaivePointSelection* and
// RemainingBound* variant ladders, which remain as thin deprecated wrappers
// for one PR (see DESIGN.md §10 for the deprecation window).
//
// With Options.Memo set, traceless calls are answered from the
// content-addressed result cache when the exact same (function, Q, options)
// request was analyzed before; hits are bit-identical to a fresh computation
// and marked Result.Cached. See memo.go.
func Analyze(g *guard.Ctx, f delay.Function, q float64, opts Options) (Result, error) {
	if opts.Memo != nil && !opts.Trace && opts.buf == nil {
		if key, verify, ok := memoKeyFor(f, q, opts); ok {
			if v, hit := opts.Memo.Get(key, verify); hit {
				res := v.(Result)
				res.Cached = true
				return res, nil
			}
			res, err := analyze(g, f, q, opts)
			if err == nil {
				opts.Memo.Put(key, verify, res, memoResultSize)
			}
			return res, err
		}
	}
	return analyze(g, f, q, opts)
}

// analyze is the uncached analysis dispatch behind Analyze.
func analyze(g *guard.Ctx, f delay.Function, q float64, opts Options) (Result, error) {
	sc := opts.Obs
	if sc == nil {
		sc = g.Obs()
	}
	switch opts.Method {
	case Algorithm1:
		// Handled below.
	case Equation4:
		if opts.Trace || opts.Limited || opts.Remaining {
			return Result{}, guard.Invalidf("core: Trace/Limited/Remaining apply to Algorithm1 only (method %v)", opts.Method)
		}
		return analyzeEq4(g, sc, f, q, opts.Solver)
	case NaiveUnsound:
		if opts.Trace || opts.Limited || opts.Remaining {
			return Result{}, guard.Invalidf("core: Trace/Limited/Remaining apply to Algorithm1 only (method %v)", opts.Method)
		}
		return analyzeNaive(g, sc, f, q)
	default:
		return Result{}, guard.Invalidf("core: unknown analysis method %d", int(opts.Method))
	}

	if opts.Remaining {
		return analyzeRemaining(g, sc, f, q, opts)
	}

	trace := opts.traceBuf()
	if opts.Limited && opts.MaxPreemptions >= 0 && trace == nil {
		// The n-largest refinement needs the per-iteration charges even
		// when the caller did not ask to keep a trace.
		trace = new([]Iteration)
	}
	res, err := upperBoundFrom(g, sc, f, q, q, trace, opts.Hints)
	if err != nil {
		return Result{}, err
	}
	if opts.Limited && opts.MaxPreemptions >= 0 {
		res.TotalDelay = limitCharges(f, res, opts.MaxPreemptions)
		res.Diverged = math.IsInf(res.TotalDelay, 1)
	}
	if !opts.Trace {
		res.Iterations = nil
	}
	return res, nil
}

// traceBuf returns the iteration destination: the Walker's reusable buffer,
// a fresh slice for Trace, or nil for the allocation-free walk.
func (o Options) traceBuf() *[]Iteration {
	if !o.Trace {
		return nil
	}
	if o.buf != nil {
		return o.buf
	}
	return new([]Iteration)
}

// limitCharges applies the preemption-count refinement to a completed walk:
// the cumulative delay of a job preemptible at most n times is bounded by the
// sum of the n largest per-iteration charges. A divergent (truncated) trace
// only supports the trace-free n × max f bound.
func limitCharges(f delay.Function, res Result, n int) float64 {
	if res.Diverged {
		_, maxF := f.MaxOn(0, f.Domain())
		return float64(n) * maxF
	}
	if n >= len(res.Iterations) {
		return res.TotalDelay
	}
	charges := make([]float64, len(res.Iterations))
	for i, it := range res.Iterations {
		charges[i] = it.DelayMax
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(charges)))
	var total float64
	for i := 0; i < n; i++ {
		total += charges[i]
	}
	return total
}

// analyzeEq4 is the Equation 4 baseline under Analyze: validation, the global
// maximum, then the fixpoint.
func analyzeEq4(g *guard.Ctx, sc *obs.Scope, f delay.Function, q float64, solver Solver) (Result, error) {
	if f == nil {
		return Result{}, guard.Invalidf("core: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return Result{}, guard.Invalidf("core: Q must be positive and finite, got %g", q)
	}
	c := f.Domain()
	_, maxF := f.MaxOn(0, c)
	v, err := eq4Fixpoint(g, sc, c, q, maxF, solver)
	if err != nil {
		return Result{}, err
	}
	return Result{TotalDelay: v, Diverged: math.IsInf(v, 1)}, nil
}

// analyzeNaive is the demonstration-only naive bound under Analyze; it
// accepts a *delay.Piecewise directly or through its indexed view.
func analyzeNaive(g *guard.Ctx, sc *obs.Scope, f delay.Function, q float64) (Result, error) {
	sc.Counter("core.naive.runs").Inc()
	v, err := naivePointSelection(g, piecewiseOf(f), q)
	if err != nil {
		return Result{}, err
	}
	return Result{TotalDelay: v}, nil
}

// analyzeRemaining is the run-time refinement under Analyze: the current
// preemption's cost plus the suffix walk with a shrunken first window.
func analyzeRemaining(g *guard.Ctx, sc *obs.Scope, f delay.Function, q float64, opts Options) (Result, error) {
	p := piecewiseOf(f)
	if p == nil {
		return Result{}, guard.Invalidf("core: remaining-delay analysis needs a piecewise function")
	}
	c := p.Domain()
	if opts.From < 0 || opts.From >= c || math.IsNaN(opts.From) {
		return Result{}, guard.Invalidf("core: progression %g outside [0, %g)", opts.From, c)
	}
	current := p.Eval(opts.From)
	suffix, err := p.Suffix(opts.From)
	if err != nil {
		return Result{}, err
	}
	res, err := upperBoundFrom(g, sc, suffix, q, q-current, opts.traceBuf(), nil)
	if err != nil {
		return Result{}, err
	}
	res.TotalDelay += current
	return res, nil
}

// piecewiseOf unwraps the scan-kernel view of f: a *delay.Piecewise directly,
// or the one behind an indexed view; nil for anything else.
func piecewiseOf(f delay.Function) *delay.Piecewise {
	switch p := f.(type) {
	case *delay.Piecewise:
		return p
	case *delay.Indexed:
		return p.Piecewise()
	}
	return nil
}

// kernelQueryCounter names the query counter charged for f: the indexed
// kernel and the linear scan are accounted separately, so a -metrics snapshot
// shows which kernel a sweep actually ran on.
func kernelQueryCounter(sc *obs.Scope, f delay.Function) *obs.Counter {
	if sc == nil {
		return nil
	}
	if _, ok := f.(*delay.Indexed); ok {
		return sc.Counter("delay.index.queries")
	}
	return sc.Counter("delay.scan.queries")
}

// Eq4Fixpoint computes the Equation 4 fixpoint from raw parameters, for
// callers that already know C and the maximum preemption delay and have no
// delay.Function to hand to Analyze. The returned value is the cumulative
// delay C' - C; +Inf when the fixpoint diverges (maxDelay >= q). It charges
// one guard step per fixpoint iteration.
func Eq4Fixpoint(g *guard.Ctx, c, q, maxDelay float64) (float64, error) {
	return eq4Fixpoint(g, g.Obs(), c, q, maxDelay, SolverAuto)
}

// eq4Fixpoint is the shared Equation 4 fixpoint loop, instrumented with
// core.eq4.runs / core.eq4.iterations (plus core.eq4.cuts and
// core.eq4.fallbacks for the cutting-plane solver).
//
// The recurrence is cur' = c + ceil(cur/q)·m with m = maxDelay < q. For the
// cutting solvers the linear relaxation ceil(x/q) ≥ x/q yields the global
// cutting plane h(x) = c + (x/q)·m ≤ g(x), whose root c·q/(q-m) lower-bounds
// the least fixpoint; one shaved jump there replaces the O(root/q) monotone
// ramp, and the remaining monotone steps settle the exact ceil terms. A
// post-jump iterate that fails to increase would mean the jump overshot (the
// shave makes that practically impossible — see the cutRelShave comment), in
// which case the loop reverts to the last monotonically-produced value and
// continues without jumps, counting core.eq4.fallbacks.
func eq4Fixpoint(g *guard.Ctx, sc *obs.Scope, c, q, maxDelay float64, solver Solver) (float64, error) {
	if c <= 0 || q <= 0 || maxDelay < 0 ||
		math.IsNaN(c) || math.IsNaN(q) || math.IsNaN(maxDelay) ||
		math.IsInf(c, 0) || math.IsInf(q, 0) || math.IsInf(maxDelay, 0) {
		return 0, guard.Invalidf("core: invalid parameters C=%g Q=%g max=%g", c, q, maxDelay)
	}
	sc.Counter("core.eq4.runs").Inc()
	itc := sc.Counter("core.eq4.iterations")
	if maxDelay == 0 {
		return 0, nil
	}
	if maxDelay >= q {
		// Each iteration adds at least one extra preemption's worth of
		// delay per window: the fixpoint diverges.
		return math.Inf(1), nil
	}
	var cut float64
	haveCut := false
	if solver != SolverMonotone && maxDelay <= cutSlopeCap*q {
		root := c * q / (q - maxDelay)
		cut = root - math.Max(cutRelShave*root, cutAbsShave)
		haveCut = !math.IsInf(cut, 0) && !math.IsNaN(cut)
	}
	cur := c
	lastSound := cur
	speculative, jumpedLast := false, false
	var iters, cuts, falls int64
	defer func() {
		itc.Add(iters)
		if cuts > 0 {
			sc.Counter("core.eq4.cuts").Add(cuts)
		}
		if falls > 0 {
			sc.Counter("core.eq4.fallbacks").Add(falls)
		}
	}()
	for i := 0; i < maxIterations; i++ {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		iters++
		next := c + math.Ceil(cur/q)*maxDelay
		if next <= cur {
			if !speculative || (!jumpedLast && next == cur) {
				return cur - c, nil
			}
			// Numerical doubt right after a jump: revert to the last
			// monotonically-produced value and iterate plainly.
			falls++
			cur, speculative, jumpedLast, haveCut = lastSound, false, false, false
			continue
		}
		jumpedLast = false
		cur = next
		if !speculative {
			lastSound = cur
		}
		if haveCut && cut > cur {
			cur, speculative, jumpedLast = cut, true, true
			haveCut = false
			cuts++
		}
	}
	return math.Inf(1), nil
}

package core

import (
	"math/rand"
	"testing"
)

// TestTraceInvariants pins the per-iteration guarantees of Algorithm 1's
// trace (the quantities the proof of Theorem 1 manipulates):
//
//  1. prog of iteration k+1 equals pnext of iteration k; prog(1) = Q.
//  2. p∩ lies in [prog, prog+Q], and when it is an interior crossing the
//     function actually reaches the descending line there.
//  3. delaymax is the maximum of f over [prog, p∩] (validated by sampling)
//     and is attained at pmax.
//  4. pnext = prog + Q - delaymax, and the per-window progression
//     Q - delaymax is strictly positive for non-divergent runs.
//  5. Total equals the running sum of the charges.
func TestTraceInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 150; trial++ {
		c := 50 + r.Float64()*400
		maxV := 1 + r.Float64()*8
		q := maxV + 0.5 + r.Float64()*50
		f := randomPiecewise(r, c, maxV)
		res, err := UpperBoundTrace(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Diverged {
			continue
		}
		var total float64
		prev := q
		for k, it := range res.Iterations {
			if it.Prog != prev {
				t.Fatalf("trial %d iter %d: prog %g != previous pnext %g", trial, k, it.Prog, prev)
			}
			if it.PIntersect < it.Prog-1e-9 || it.PIntersect > it.Prog+q+1e-9 {
				t.Fatalf("trial %d iter %d: p∩ %g outside [prog, prog+Q]", trial, k, it.PIntersect)
			}
			if it.PIntersect < it.Prog+q-1e-9 {
				// Interior crossing: f reaches the line D(x) = prog+Q-x.
				d := it.Prog + q - it.PIntersect
				if f.Eval(it.PIntersect) < d-1e-6 {
					t.Fatalf("trial %d iter %d: f(p∩)=%g below line %g",
						trial, k, f.Eval(it.PIntersect), d)
				}
			}
			if f.Eval(it.PMax) != it.DelayMax {
				t.Fatalf("trial %d iter %d: f(pmax) %g != delaymax %g",
					trial, k, f.Eval(it.PMax), it.DelayMax)
			}
			for i := 0; i < 25; i++ {
				x := it.Prog + r.Float64()*(it.PIntersect-it.Prog)
				if f.Eval(x) > it.DelayMax+1e-9 {
					t.Fatalf("trial %d iter %d: f(%g)=%g exceeds delaymax %g",
						trial, k, x, f.Eval(x), it.DelayMax)
				}
			}
			if want := it.Prog + q - it.DelayMax; it.PNext != want {
				t.Fatalf("trial %d iter %d: pnext %g != %g", trial, k, it.PNext, want)
			}
			if q-it.DelayMax <= 0 {
				t.Fatalf("trial %d iter %d: non-divergent run with zero window progression", trial, k)
			}
			total += it.DelayMax
			if it.Total != total {
				t.Fatalf("trial %d iter %d: running total %g != %g", trial, k, it.Total, total)
			}
			prev = it.PNext
		}
		if total != res.TotalDelay {
			t.Fatalf("trial %d: trace sum %g != result %g", trial, total, res.TotalDelay)
		}
	}
}

package core

import (
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/obs"
)

func walkerTestFn(t testing.TB) *delay.Piecewise {
	t.Helper()
	p, err := delay.NewPiecewise(
		[]float64{0, 30, 80, 150, 200},
		[]float64{2, 6, 1, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUpperBoundZeroAlloc pins the tentpole's allocation contract: the
// traceless Algorithm 1 walk performs no heap allocations per run, on both
// the scan and the indexed kernel.
func TestUpperBoundZeroAlloc(t *testing.T) {
	p := walkerTestFn(t)
	for _, tc := range []struct {
		name string
		f    delay.Function
	}{
		{"scan", p},
		{"indexed", delay.NewIndexed(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, func() {
				if _, err := UpperBound(tc.f, 20); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("UpperBound allocates %.1f objects per run, want 0", avg)
			}
		})
	}
}

// TestWalkerTraceZeroAllocSteadyState asserts the Walker's reusable buffer
// absorbs the trace: after a warm-up run grows it to the steady size,
// subsequent traced runs allocate nothing.
func TestWalkerTraceZeroAllocSteadyState(t *testing.T) {
	p := walkerTestFn(t)
	var w Walker
	if _, err := w.Trace(nil, p, 20); err != nil { // warm up the buffer
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := w.Trace(nil, p, 20); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Walker.Trace allocates %.1f objects per run, want 0", avg)
	}
}

// TestWalkerMatchesUpperBoundTrace asserts Walker.Trace and Walker.UpperBound
// are behaviour-identical to the plain entry points (only the buffer
// ownership differs).
func TestWalkerMatchesUpperBoundTrace(t *testing.T) {
	p := walkerTestFn(t)
	var w Walker
	for _, q := range []float64{7, 20, 55, 300} {
		want, err := UpperBoundTrace(p, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.Trace(nil, p, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalDelay != want.TotalDelay || got.Preemptions != want.Preemptions || got.Diverged != want.Diverged {
			t.Fatalf("Q=%g: walker (%v,%d,%v) vs trace (%v,%d,%v)",
				q, got.TotalDelay, got.Preemptions, got.Diverged,
				want.TotalDelay, want.Preemptions, want.Diverged)
		}
		if len(got.Iterations) != len(want.Iterations) {
			t.Fatalf("Q=%g: walker %d iterations vs trace %d", q, len(got.Iterations), len(want.Iterations))
		}
		for i := range want.Iterations {
			if got.Iterations[i] != want.Iterations[i] {
				t.Fatalf("Q=%g iteration %d: walker %+v vs trace %+v", q, i, got.Iterations[i], want.Iterations[i])
			}
		}
		b, err := w.UpperBound(nil, p, q)
		if err != nil {
			t.Fatal(err)
		}
		if b != want.TotalDelay {
			t.Fatalf("Q=%g: Walker.UpperBound %v vs trace total %v", q, b, want.TotalDelay)
		}
	}
}

// TestWalkerBufferReuse documents the aliasing contract: a second Trace call
// overwrites the iterations returned by the first.
func TestWalkerBufferReuse(t *testing.T) {
	p := walkerTestFn(t)
	var w Walker
	r1, err := w.Trace(nil, p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Iterations) == 0 {
		t.Fatal("expected a non-empty trace")
	}
	first := r1.Iterations[0]
	if _, err := w.Trace(nil, p, 50); err != nil {
		t.Fatal(err)
	}
	if r1.Iterations[0] == first {
		// Q=50's first window reaches the global max (delay 6, not 2), so
		// the first record must have changed; if it did not, the buffer is
		// not being reused.
		t.Error("second Trace did not reuse the buffer (records unchanged)")
	}
}

// TestAnalyzeZeroAllocWithScope pins the observability overhead contract of
// DESIGN.md §10: a traceless Analyze run with a live scope attached is still
// allocation-free — the walk accumulates its iteration and kernel-query
// counts in locals and flushes them into the registry at exit.
func TestAnalyzeZeroAllocWithScope(t *testing.T) {
	p := walkerTestFn(t)
	rec := obs.NewTestRecorder()
	sc := rec.Scope()
	for _, tc := range []struct {
		name string
		f    delay.Function
	}{
		{"scan", p},
		{"indexed", delay.NewIndexed(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, func() {
				if _, err := Analyze(nil, tc.f, 20, Options{Obs: sc}); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("Analyze with scope allocates %.1f objects per run, want 0", avg)
			}
		})
	}
	if rec.Counter("core.alg1.runs") == 0 || rec.Counter("core.alg1.iterations") == 0 {
		t.Fatal("scope recorded no runs/iterations despite being attached")
	}
}

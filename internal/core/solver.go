package core

import (
	"fmt"

	"fnpr/internal/guard"
)

// Solver selects the fixpoint strategy used by the iterative bounds: the
// Equation 4 fixpoint here in core and the response-time / demand fixpoints
// in internal/sched (which aliases this type).
//
// The cutting-plane strategy (Singh-style, see DESIGN.md §15) solves the
// linearized relaxation of the current recurrence exactly and jumps to the
// largest root of that cutting plane (shaved by a relative safety margin)
// instead of iterating R_{k+1} = f(R_k) one release at a time. Jump targets
// are always strictly below the relaxation's real root, so the subsequent
// monotone steps converge to the same least fixpoint; on any numerical doubt
// — a post-jump iterate that fails to increase, a speculative
// deadline crossing, a relaxation slope too close to 1 — the solver reverts
// to the last value produced by plain monotone iteration and disables further
// jumps, making the run a warm-started monotone iteration from there on.
// Results are bit-identical across solvers; only iteration counts differ
// (differentially asserted on 10k random task sets in internal/sched).
type Solver int

const (
	// SolverAuto picks the default strategy: cutting-plane jumps with
	// automatic fallback to monotone iteration on numerical doubt.
	SolverAuto Solver = iota
	// SolverMonotone forces the classic monotone fixpoint iteration
	// (exactly the pre-solver behaviour, tick for tick).
	SolverMonotone
	// SolverCutting requests the cutting-plane strategy explicitly; it
	// still falls back to monotone iteration on numerical doubt (there is
	// no unsafe mode).
	SolverCutting
)

// String implements fmt.Stringer with the names ParseSolver accepts.
func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverMonotone:
		return "monotone"
	case SolverCutting:
		return "cutting"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver parses a -solver flag / "solver" request field value.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "auto":
		return SolverAuto, nil
	case "monotone":
		return SolverMonotone, nil
	case "cutting", "cutting-plane":
		return SolverCutting, nil
	default:
		return 0, guard.Invalidf("core: unknown solver %q (want auto, monotone or cutting)", s)
	}
}

// Cutting-plane safety margins, shared by the Equation 4 fixpoint here and
// the sched response-time solver.
//
// A jump target is the relaxation root shaved by max(cutRelShave·|root|,
// cutAbsShave). Floating-point error in the root computation is a few ulps
// (~1e-16 relative) amplified by at most 1/(1-slope) ≤ 1000 under
// cutSlopeCap, so the shave exceeds it by orders of magnitude and the target
// stays strictly below the real root — and therefore at or below the least
// fixpoint the monotone iteration converges to. Slopes above cutSlopeCap
// amplify rounding beyond what the shave covers, so no jump is attempted.
const (
	cutRelShave = 1e-9
	cutAbsShave = 1e-12
	cutSlopeCap = 0.999
)

// maxHintPieces caps the number of per-iteration piece indices a walk records
// into WalkHints.Out: hints are a constant-factor accelerator for the common
// short walks, and unbounded recording would let a divergent walk grow the
// slice without limit.
const maxHintPieces = 4096

// WalkHints carries cross-run seeding for the Algorithm 1 walk. Adjacent Q
// grid points walk nearly the same delay function, so the piece index where
// iteration k's descending-line crossing was found in one walk is an
// excellent first candidate for iteration k of the neighbouring walk
// (eval.QSweep threads these between grid points and counts
// sweep.qshare.{seeded,cold}).
//
// Hints are strictly an accelerator: a wrong or stale hint costs one extra
// exact recheck and the search falls back to the full bisection, so results
// are bit-identical with any In contents. Hints only take effect on indexed
// delay functions (the scan kernel has no crossing index to seed).
type WalkHints struct {
	// In seeds iteration k of the walk with In[k], the piece index where a
	// previous similar walk found its crossing (-1 recorded no crossing).
	// Entries beyond the walk's iteration count are ignored.
	In []int32
	// Out receives this walk's per-iteration crossing pieces (capped at
	// maxHintPieces; -1 for iterations without a crossing), replacing any
	// previous contents. It is only populated when the walk actually runs
	// on an indexed function.
	Out []int32
}

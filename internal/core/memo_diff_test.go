package core

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
)

// This file is the differential battery locking down the result cache: tens
// of thousands of random (function, Q, options) triples — including
// ulp-adjacent Q neighbors and mixed indexed/scan kernels — replayed through
// Analyze cache-on vs cache-off, every result compared at the bit level. The
// cache is only allowed to change speed, never a single float bit.

// diffTriple is one randomized analysis request.
type diffTriple struct {
	scan    *delay.Piecewise
	indexed *delay.Indexed
	useIdx  bool // which kernel the cached run sees
	q       float64
	opts    Options
}

// genTriples builds n random triples: functions of 1..64 pieces, Qs both
// safely convergent and deliberately divergent plus single-ulp neighbors,
// and an option mix over every cacheable mode.
func genTriples(t *testing.T, rng *rand.Rand, n int) []diffTriple {
	t.Helper()
	var out []diffTriple
	for len(out) < n {
		np := 1 + rng.Intn(64)
		xs := []float64{0}
		vs := make([]float64, 0, np)
		maxF := 0.0
		for i := 0; i < np; i++ {
			xs = append(xs, xs[len(xs)-1]+0.05+rng.Float64()*0.4)
			v := rng.Float64() * 8
			vs = append(vs, v)
			if v > maxF {
				maxF = v
			}
		}
		p, err := delay.NewPiecewise(xs, vs)
		if err != nil {
			t.Fatal(err)
		}
		ix := delay.NewIndexed(p)
		// A handful of Qs per function, each at several ulp offsets: the
		// cache must treat math.Nextafter neighbors as distinct requests.
		for k := 0; k < 5 && len(out) < n; k++ {
			var q float64
			if k == 4 {
				q = maxF * (0.3 + 0.4*rng.Float64()) // divergent region
				if q <= 0 {
					q = 0.5
				}
			} else {
				q = maxF + 0.5 + rng.Float64()*p.Domain()
			}
			for _, qq := range []float64{q, math.Nextafter(q, math.Inf(1)), math.Nextafter(q, 0)} {
				if len(out) >= n {
					break
				}
				opts := Options{}
				switch rng.Intn(10) {
				case 0, 1:
					opts.Method = Equation4
				case 2:
					opts.Limited = true
					opts.MaxPreemptions = rng.Intn(5)
				case 3:
					opts.Remaining = true
					opts.From = rng.Float64() * p.Domain() * 0.99
				}
				out = append(out, diffTriple{
					scan: p, indexed: ix, useIdx: rng.Intn(2) == 0,
					q: qq, opts: opts,
				})
			}
		}
	}
	return out
}

// bitEqual compares two results at the float-bit level (so +Inf vs +Inf and
// -0 vs 0 are judged exactly, not by ==).
func bitEqual(a, b Result) bool {
	return math.Float64bits(a.TotalDelay) == math.Float64bits(b.TotalDelay) &&
		a.Preemptions == b.Preemptions &&
		a.Diverged == b.Diverged
}

// TestMemoDifferential is satellite 1: >= 10k random triples, each analyzed
// cache-off and cache-on with bit-identical results, then the whole battery
// replayed against the warm cache — every replay must hit (>= 99% required;
// all triples are fingerprintable here so the bar is 100%) and still match.
func TestMemoDifferential(t *testing.T) {
	const n = 10_000
	rng := rand.New(rand.NewSource(20260808))
	triples := genTriples(t, rng, n)

	rec := obs.NewTestRecorder()
	cache := NewResultCache(memo.Options{MaxEntries: 2 * n, Obs: rec.Scope()})

	run := func(tr diffTriple, c *memo.Cache) Result {
		t.Helper()
		var f delay.Function = tr.scan
		if c != nil && tr.useIdx {
			// The cached run sometimes sees the indexed kernel while the
			// reference ran the scan: the fingerprint identifies the
			// function, not the kernel, and the kernels are bit-identical.
			f = tr.indexed
		}
		o := tr.opts
		o.Memo = c
		res, err := Analyze(nil, f, tr.q, o)
		if err != nil {
			t.Fatalf("Analyze(q=%v, opts=%+v): %v", tr.q, tr.opts, err)
		}
		return res
	}

	// Pass 1: populate, comparing against the uncached reference.
	for i, tr := range triples {
		want := run(tr, nil)
		got := run(tr, cache)
		if !bitEqual(want, got) {
			t.Fatalf("triple %d: cache-on run diverged from reference\nwant %+v\ngot  %+v", i, want, got)
		}
	}
	// Pass 2: replay. Every request was stored, so every one must hit and
	// every result must still be bit-identical.
	hitsBefore := rec.Counter("memo.hits")
	for i, tr := range triples {
		want := run(tr, nil)
		got := run(tr, cache)
		if !bitEqual(want, got) {
			t.Fatalf("replay %d: cached result diverged\nwant %+v\ngot  %+v", i, want, got)
		}
		if !got.Cached {
			t.Fatalf("replay %d: result not served from cache", i)
		}
	}
	hits := rec.Counter("memo.hits") - hitsBefore
	if frac := float64(hits) / float64(n); frac < 0.99 {
		t.Fatalf("replay hit rate %.4f (%d/%d), want >= 0.99", frac, hits, n)
	}
	if got := rec.Counter("memo.collisions"); got != 0 {
		// Not a correctness failure (collisions verify and recompute), but
		// with 10k random requests on a 64-bit fold one would be astonishing
		// and worth a look.
		t.Errorf("unexpected primary-key collisions: %d", got)
	}
}

// TestMemoCollisionSafety forces every request onto one primary key by
// pinning the fold function, then proves the verify step returns each
// request its own result — a collision costs a recompute, never a wrong
// answer.
func TestMemoCollisionSafety(t *testing.T) {
	orig := memoPrimaryKey
	memoPrimaryKey = func(string) uint64 { return 0xC011151099 }
	defer func() { memoPrimaryKey = orig }()

	f1, err := delay.NewPiecewise([]float64{0, 5, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := delay.NewPiecewise([]float64{0, 5, 10}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTestRecorder()
	cache := NewResultCache(memo.Options{Obs: rec.Scope()})

	want1, err := Analyze(nil, f1, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Analyze(nil, f2, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bitEqual(want1, want2) {
		t.Fatal("test functions chose indistinguishable results; pick better ones")
	}
	got1, err := Analyze(nil, f1, 6, Options{Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Analyze(nil, f2, 6, Options{Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got1, want1) || got1.Cached {
		t.Fatalf("first colliding request: %+v, want fresh %+v", got1, want1)
	}
	if !bitEqual(got2, want2) || got2.Cached {
		t.Fatalf("second colliding request served a wrong or stale result: %+v, want %+v", got2, want2)
	}
	if got := rec.Counter("memo.collisions"); got < 1 {
		t.Fatalf("memo.collisions = %d, want >= 1", got)
	}
	// Replaying request 2 hits now (last writer owns the slot); request 1
	// collides again and recomputes — still correct.
	re2, _ := Analyze(nil, f2, 6, Options{Memo: cache})
	if !bitEqual(re2, want2) || !re2.Cached {
		t.Fatalf("replay of slot owner: %+v", re2)
	}
	re1, _ := Analyze(nil, f1, 6, Options{Memo: cache})
	if !bitEqual(re1, want1) || re1.Cached {
		t.Fatalf("replay of evicted collider: %+v", re1)
	}
}

// TestMemoBypasses pins the modes that must not consult the cache: traced
// calls (their Iterations are not cached) and functions outside the
// canonical families (no fingerprint, no key).
func TestMemoBypasses(t *testing.T) {
	p, err := delay.NewPiecewise([]float64{0, 10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTestRecorder()
	cache := NewResultCache(memo.Options{Obs: rec.Scope()})
	res, err := Analyze(nil, p, 4, Options{Trace: true, Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("traced call lost its trace")
	}
	if cache.Len() != 0 {
		t.Fatal("traced call populated the cache")
	}
	// Same request untraced twice: second is a hit and carries no trace.
	if _, err := Analyze(nil, p, 4, Options{Memo: cache}); err != nil {
		t.Fatal(err)
	}
	hit, err := Analyze(nil, p, 4, Options{Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Iterations != nil {
		t.Fatalf("untraced replay: %+v", hit)
	}
	// And a traced call after the hit still computes a fresh trace.
	traced, err := Analyze(nil, p, 4, Options{Trace: true, Memo: cache})
	if err != nil || len(traced.Iterations) == 0 || traced.Cached {
		t.Fatalf("traced call after warm cache: %+v, %v", traced, err)
	}
}

// TestResultCodecRoundtrip proves the persistence codec is bit-exact,
// including the non-finite encodings a diverged bound produces.
func TestResultCodecRoundtrip(t *testing.T) {
	cases := []Result{
		{TotalDelay: 3.0000000000000004, Preemptions: 7},
		{TotalDelay: math.Inf(1), Preemptions: 1, Diverged: true},
		{TotalDelay: 0, Preemptions: 0},
		{TotalDelay: math.Copysign(0, -1)},
		{TotalDelay: 1e-308, Preemptions: 2},
	}
	for i, res := range cases {
		data, err := resultCodec.Encode(res)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		back, _, err := resultCodec.Decode(data)
		if err != nil {
			t.Fatalf("case %d: decode %s: %v", i, data, err)
		}
		if !bitEqual(res, back.(Result)) {
			t.Fatalf("case %d: roundtrip %s changed %+v to %+v", i, data, res, back)
		}
	}
	if _, _, err := resultCodec.Decode([]byte(`{"total_delay":"weird"}`)); err == nil {
		t.Fatal("unknown non-finite marker decoded")
	}
}

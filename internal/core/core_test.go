package core

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
)

func constF(v, c float64) *delay.Piecewise { return delay.Constant(v, c) }

func TestUpperBoundValidation(t *testing.T) {
	f := constF(1, 100)
	if _, err := UpperBound(nil, 10); err == nil {
		t.Fatal("accepted nil function")
	}
	for _, q := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := UpperBound(f, q); err == nil {
			t.Fatalf("accepted Q=%v", q)
		}
	}
}

func TestUpperBoundZeroDelay(t *testing.T) {
	f := constF(0, 100)
	b, err := UpperBound(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("bound = %g, want 0", b)
	}
}

func TestUpperBoundNoPreemptionPossible(t *testing.T) {
	// Q >= C: the job always finishes inside its first non-preemptive
	// region, so no delay is ever charged.
	f := constF(5, 100)
	b, err := UpperBound(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("bound = %g, want 0", b)
	}
}

func TestUpperBoundConstantFunction(t *testing.T) {
	// f = 2 on [0,100], Q = 10. Iterations: pnext starts at 10, each
	// iteration charges 2 and advances by 8. Progressions: 10, 18, 26,
	// ..., 98 -> 12 iterations, bound 24.
	f := constF(2, 100)
	r, err := UpperBoundTrace(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 12 {
		t.Fatalf("preemptions = %d, want 12", r.Preemptions)
	}
	if r.TotalDelay != 24 {
		t.Fatalf("bound = %g, want 24", r.TotalDelay)
	}
	if r.Diverged {
		t.Fatal("unexpected divergence")
	}
	// Trace consistency.
	for i, it := range r.Iterations {
		if it.DelayMax != 2 {
			t.Fatalf("iteration %d delay = %g", i, it.DelayMax)
		}
		if it.PNext != it.Prog+10-2 {
			t.Fatalf("iteration %d pnext inconsistent", i)
		}
	}
}

func TestUpperBoundDivergence(t *testing.T) {
	// Delay equals Q: no guaranteed progression.
	f := constF(10, 100)
	r, err := UpperBoundTrace(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Diverged || !math.IsInf(r.TotalDelay, 1) {
		t.Fatalf("expected divergence, got %+v", r)
	}
}

func TestUpperBoundSkipsQuietPrefix(t *testing.T) {
	// Delay only in the second half: windows in the first half charge 0.
	f, err := delay.NewPiecewise([]float64{0, 50, 100}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := UpperBoundTrace(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Progression points: 10,20,30,40 charge 0 (window fully quiet
	// except the one reaching 50).
	if r.Iterations[0].DelayMax != 0 {
		t.Fatal("first window should be quiet")
	}
	if r.TotalDelay >= 4*float64(r.Preemptions) {
		t.Fatalf("bound %g should be below max x preemptions", r.TotalDelay)
	}
}

func TestEffectiveWCET(t *testing.T) {
	f := constF(2, 100)
	r, _ := UpperBoundTrace(f, 10)
	if got := r.EffectiveWCET(100); got != 124 {
		t.Fatalf("C' = %g, want 124", got)
	}
}

func TestPIntersectLimitsWindow(t *testing.T) {
	// A towering late peak inside the window must be cut off by p∩:
	// f = 0 on [0,18), 9 on [18,100]. Q = 10. First window
	// [10,20]: D(x) = 20-x; f reaches D first where 9 >= 20-x -> x=11,
	// but f(11)=0<9 — the crossing is at x=18 (f jumps to 9 >= 2).
	// delaymax = max f on [10,18] = 9? No: on [10,18) f=0, and at 18
	// f=9, so max on [10,18] = 9 at p=18.
	f, err := delay.NewPiecewise([]float64{0, 18, 100}, []float64{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := UpperBoundTrace(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iterations[0]
	if it.PIntersect != 18 {
		t.Fatalf("p∩ = %g, want 18", it.PIntersect)
	}
	if it.DelayMax != 9 || it.PMax != 18 {
		t.Fatalf("delaymax = %g at %g, want 9 at 18", it.DelayMax, it.PMax)
	}
}

func TestStateOfTheArtBasics(t *testing.T) {
	// C=100, Q=10, max=2: fixpoint C' = 100 + ceil(C'/10)*2:
	// C'0=100 -> 120 -> 124 -> 126 -> 126 (ceil(126/10)=13 -> 126).
	f := constF(2, 100)
	soa, err := StateOfTheArt(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if soa != 26 {
		t.Fatalf("SOA = %g, want 26", soa)
	}
}

func TestStateOfTheArtDivergence(t *testing.T) {
	f := constF(10, 100)
	soa, err := StateOfTheArt(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(soa, 1) {
		t.Fatalf("SOA = %g, want +Inf", soa)
	}
}

func TestStateOfTheArtZeroDelay(t *testing.T) {
	soa, err := StateOfTheArtRaw(100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if soa != 0 {
		t.Fatalf("SOA = %g, want 0", soa)
	}
}

func TestStateOfTheArtRawValidation(t *testing.T) {
	for _, c := range [][3]float64{{0, 10, 1}, {100, 0, 1}, {100, 10, -1}} {
		if _, err := StateOfTheArtRaw(c[0], c[1], c[2]); err == nil {
			t.Fatalf("accepted C=%g Q=%g max=%g", c[0], c[1], c[2])
		}
	}
	if _, err := StateOfTheArt(nil, 10); err == nil {
		t.Fatal("accepted nil function")
	}
	if _, err := StateOfTheArt(constF(1, 10), -1); err == nil {
		t.Fatal("accepted negative Q")
	}
}

// randomPiecewise builds a random delay function with values bounded by
// maxV and domain c.
func randomPiecewise(r *rand.Rand, c, maxV float64) *delay.Piecewise {
	n := r.Intn(10) + 1
	xs := make([]float64, 0, n+1)
	xs = append(xs, 0)
	for i := 1; i < n; i++ {
		xs = append(xs, xs[len(xs)-1]+1+r.Float64()*(c/float64(n)))
	}
	// Ensure last breakpoint is c and strictly increasing.
	last := xs[len(xs)-1]
	if last >= c {
		xs = []float64{0}
	}
	xs = append(xs, c)
	vs := make([]float64, len(xs)-1)
	for i := range vs {
		vs[i] = r.Float64() * maxV
	}
	p, err := delay.NewPiecewise(xs, vs)
	if err != nil {
		panic(err)
	}
	return p
}

// TestDominanceOverStateOfTheArt: Algorithm 1 never exceeds Equation 4.
func TestDominanceOverStateOfTheArt(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		c := 50 + r.Float64()*500
		maxV := 1 + r.Float64()*10
		q := maxV + 1 + r.Float64()*50 // keep both analyses finite
		f := randomPiecewise(r, c, maxV)
		alg, err := UpperBound(f, q)
		if err != nil {
			t.Fatal(err)
		}
		soa, err := StateOfTheArt(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if alg > soa+1e-6 {
			t.Fatalf("trial %d: Algorithm 1 (%g) exceeds SOA (%g) for Q=%g f=%v",
				trial, alg, soa, q, f)
		}
	}
}

// TestSoundnessAgainstScenarios: Theorem 1 — the bound dominates greedy,
// peak-seeking and random adversarial scenarios.
func TestSoundnessAgainstScenarios(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		c := 50 + r.Float64()*500
		maxV := 1 + r.Float64()*10
		q := maxV + 0.5 + r.Float64()*60
		f := randomPiecewise(r, c, maxV)
		bound, err := UpperBound(f, q)
		if err != nil {
			t.Fatal(err)
		}

		_, greedy := GreedyScenario(f, q)
		if greedy.TotalDelay > bound+1e-9 {
			t.Fatalf("trial %d: greedy scenario (%g) beats bound (%g), Q=%g, f=%v",
				trial, greedy.TotalDelay, bound, q, f)
		}

		_, peak := PeakSeekingScenario(f, q)
		if peak.TotalDelay > bound+1e-9 {
			t.Fatalf("trial %d: peak-seeking scenario (%g) beats bound (%g), Q=%g, f=%v",
				trial, peak.TotalDelay, bound, q, f)
		}

		// Random scenarios with jittered spacing.
		for k := 0; k < 10; k++ {
			var s Scenario
			e := q + r.Float64()*q
			for e < c+bound+q {
				s = append(s, e)
				e += q + r.Float64()*q*0.7
			}
			run, err := s.Run(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if run.TotalDelay > bound+1e-9 {
				t.Fatalf("trial %d: random scenario (%g) beats bound (%g), Q=%g, f=%v",
					trial, run.TotalDelay, bound, q, f)
			}
		}
	}
}

// TestEnvelopeSoundness: running the analysis on an upper envelope g >= f is
// sound for scenarios of f.
func TestEnvelopeSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := 100 + r.Float64()*300
		maxV := 1 + r.Float64()*8
		q := maxV + 2 + r.Float64()*40
		f := randomPiecewise(r, c, maxV)
		// g = f + nonnegative bump (same breakpoints, bigger values).
		bump := r.Float64() * (q - maxV - 1)
		g, err := delay.NewPiecewise(f.Breakpoints(), addScalar(f.Values(), bump))
		if err != nil {
			t.Fatal(err)
		}
		boundG, err := UpperBound(g, q)
		if err != nil {
			t.Fatal(err)
		}
		_, runF := GreedyScenario(f, q)
		if runF.TotalDelay > boundG+1e-9 {
			t.Fatalf("trial %d: envelope bound %g below f-scenario %g", trial, boundG, runF.TotalDelay)
		}
		// Empirical monotonicity of the bound itself.
		boundF, _ := UpperBound(f, q)
		if boundF > boundG+1e-9 {
			t.Fatalf("trial %d: bound not monotone: f->%g, g->%g", trial, boundF, boundG)
		}
	}
}

func addScalar(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] + s
	}
	return out
}

// TestNaiveBoundUnsound reproduces Figure 2: there exist functions and Q for
// which the naive progression-spaced point selection undercounts a feasible
// run-time scenario, while Algorithm 1 does not.
func TestNaiveBoundUnsound(t *testing.T) {
	// Two tall narrow peaks slightly more than Q apart in progression,
	// plus a third reachable only because delay payback slides execution
	// time past it: greedy run-time preemptions catch more peaks than
	// static progression spacing allows.
	f, err := delay.NewPiecewise(
		[]float64{0, 10, 12, 19, 21, 28, 30, 40},
		[]float64{0, 8, 0, 8, 0, 8, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := 10.0
	naive, err := NaivePointSelection(f, q)
	if err != nil {
		t.Fatal(err)
	}
	// Run-time adversary: strike at execution times 10, 20, 30 ->
	// progressions 10, 12 (20-8), 14... let the scenario machinery find it.
	_, greedy := GreedyScenario(f, q)
	_, peak := PeakSeekingScenario(f, q)
	observed := math.Max(greedy.TotalDelay, peak.TotalDelay)
	if observed <= naive {
		t.Fatalf("expected a feasible run (%g) above the naive bound (%g) — counter-example lost", observed, naive)
	}
	// Algorithm 1 stays sound.
	alg, err := UpperBound(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if observed > alg+1e-9 {
		t.Fatalf("Algorithm 1 bound %g below observed %g", alg, observed)
	}
}

func TestNaivePointSelectionBasic(t *testing.T) {
	// Single peak: the naive bound picks it once per Q spacing chain.
	f, err := delay.NewPiecewise([]float64{0, 50, 60, 100}, []float64{0, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaivePointSelection(f, 30)
	if err != nil {
		t.Fatal(err)
	}
	if naive != 7 {
		t.Fatalf("naive = %g, want 7 (single reachable peak)", naive)
	}
}

func TestNaivePointSelectionValidation(t *testing.T) {
	if _, err := NaivePointSelection(nil, 10); err == nil {
		t.Fatal("accepted nil function")
	}
	f := constF(1, 10)
	if _, err := NaivePointSelection(f, 0); err == nil {
		t.Fatal("accepted Q=0")
	}
}

func TestScenarioValidate(t *testing.T) {
	s := Scenario{10, 25, 40}
	if err := s.Validate(10); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if err := (Scenario{5}).Validate(10); err == nil {
		t.Fatal("first preemption before Q accepted")
	}
	if err := (Scenario{10, 15}).Validate(10); err == nil {
		t.Fatal("spacing violation accepted")
	}
}

func TestScenarioRunStopsAtCompletion(t *testing.T) {
	f := constF(1, 20)
	// Preemptions at 10 and 20: at e=20 progression = 20-1 = 19 < 20
	// (still running); at e=30 progression = 30-2 = 28 >= 20 -> ignored.
	s := Scenario{10, 20, 30}
	run, err := s.Run(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if run.Preemptions != 2 {
		t.Fatalf("preemptions = %d, want 2", run.Preemptions)
	}
	if run.TotalDelay != 2 {
		t.Fatalf("delay = %g, want 2", run.TotalDelay)
	}
	if run.FinishTime != 22 {
		t.Fatalf("finish = %g, want 22", run.FinishTime)
	}
}

func TestGreedyScenarioSpacing(t *testing.T) {
	f := constF(2, 100)
	s, run := GreedyScenario(f, 10)
	if err := s.Validate(10); err != nil {
		t.Fatalf("greedy scenario invalid: %v", err)
	}
	if run.Preemptions == 0 {
		t.Fatal("greedy scenario never preempted")
	}
	// Constant function: greedy achieves exactly the Algorithm 1 bound.
	bound, _ := UpperBound(f, 10)
	if math.Abs(run.TotalDelay-bound) > 1e-9 {
		t.Fatalf("greedy on constant f: %g, bound %g — should coincide", run.TotalDelay, bound)
	}
}

func TestPeakSeekingBeatsGreedyOnPeakedFunctions(t *testing.T) {
	// A single narrow peak: greedy (fixed spacing) may miss it, the
	// peak-seeker hits it.
	f, err := delay.NewPiecewise([]float64{0, 55, 58, 200}, []float64{0, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, greedy := GreedyScenario(f, 20)
	_, peak := PeakSeekingScenario(f, 20)
	if peak.TotalDelay < greedy.TotalDelay {
		t.Fatalf("peak-seeker (%g) worse than greedy (%g)", peak.TotalDelay, greedy.TotalDelay)
	}
	if peak.TotalDelay != 9 {
		t.Fatalf("peak-seeker should catch the peak once: %g", peak.TotalDelay)
	}
}

// TestPaperBenchmarkBounds: on the paper's own benchmark functions, the
// Algorithm 1 bound is finite, sound and below the state of the art for a
// spread of Q values (the Figure 5 claim).
func TestPaperBenchmarkBounds(t *testing.T) {
	for _, params := range []delay.BenchmarkParams{delay.LiteralParams(), delay.CalibratedParams()} {
		for name, f := range params.Benchmarks() {
			_, maxF := f.Max()
			for _, q := range []float64{maxF + 10, 100, 400, 1000, 1900} {
				alg, err := UpperBound(f, q)
				if err != nil {
					t.Fatal(err)
				}
				soa, err := StateOfTheArt(f, q)
				if err != nil {
					t.Fatal(err)
				}
				if alg > soa+1e-6 {
					t.Errorf("%s Q=%g: Algorithm 1 %g above SOA %g", name, q, alg, soa)
				}
				_, greedy := GreedyScenario(f, q)
				if greedy.TotalDelay > alg+1e-9 {
					t.Errorf("%s Q=%g: greedy %g above bound %g", name, q, greedy.TotalDelay, alg)
				}
				_, peak := PeakSeekingScenario(f, q)
				if peak.TotalDelay > alg+1e-9 {
					t.Errorf("%s Q=%g: peak-seeking %g above bound %g", name, q, peak.TotalDelay, alg)
				}
			}
		}
	}
}

// TestQNonMonotonicityArtifact documents the analysis artifact discussed in
// Section VI: the bound is not necessarily monotone in Q. We sweep Q over a
// peaked function and require at least one adjacent increase — the artifact
// the paper explicitly reports seeing.
func TestQNonMonotonicityArtifact(t *testing.T) {
	f := delay.LiteralParams().Gaussian2()
	prev := math.Inf(1)
	found := false
	for q := 20.0; q <= 500; q += 5 {
		b, err := UpperBound(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if b > prev+1e-9 {
			found = true
			break
		}
		prev = b
	}
	if !found {
		t.Skip("no non-monotonicity found on this grid; artifact not triggered")
	}
}

package core

import (
	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// Test-local shims over Analyze, standing in for the pre-Analyze entry-point
// ladder whose deprecation window closed. The extensive in-package suites
// were written against these names; keeping the thin adapters here preserves
// that coverage verbatim while the exported surface stays consolidated
// (tools/lintapi ignores _test.go files).

func UpperBound(f delay.Function, q float64) (float64, error) {
	return UpperBoundCtx(nil, f, q)
}

func UpperBoundCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{})
	return r.TotalDelay, err
}

func UpperBoundTrace(f delay.Function, q float64) (Result, error) {
	return UpperBoundTraceCtx(nil, f, q)
}

func UpperBoundTraceCtx(g *guard.Ctx, f delay.Function, q float64) (Result, error) {
	return Analyze(g, f, q, Options{Trace: true})
}

func StateOfTheArt(f delay.Function, q float64) (float64, error) {
	return StateOfTheArtCtx(nil, f, q)
}

func StateOfTheArtCtx(g *guard.Ctx, f delay.Function, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{Method: Equation4})
	return r.TotalDelay, err
}

func StateOfTheArtRaw(c, q, maxDelay float64) (float64, error) {
	return Eq4Fixpoint(nil, c, q, maxDelay)
}

func NaivePointSelection(f *delay.Piecewise, q float64) (float64, error) {
	return NaivePointSelectionCtx(nil, f, q)
}

func NaivePointSelectionCtx(g *guard.Ctx, f *delay.Piecewise, q float64) (float64, error) {
	r, err := Analyze(g, f, q, Options{Method: NaiveUnsound})
	return r.TotalDelay, err
}

func RemainingBound(f *delay.Piecewise, q, p float64) (float64, error) {
	r, err := Analyze(nil, f, q, Options{Remaining: true, From: p})
	return r.TotalDelay, err
}

func UpperBoundLimited(f delay.Function, q float64, maxPreemptions int) (float64, error) {
	return UpperBoundLimitedCtx(nil, f, q, maxPreemptions)
}

func UpperBoundLimitedCtx(g *guard.Ctx, f delay.Function, q float64, maxPreemptions int) (float64, error) {
	r, err := Analyze(g, f, q, Options{Limited: maxPreemptions >= 0, MaxPreemptions: maxPreemptions})
	return r.TotalDelay, err
}

package core

import (
	"math"
	"testing"

	"fnpr/internal/delay"
)

// fuzzFunction derives a small piecewise delay function and a Q from raw
// fuzz inputs, normalising into valid, non-divergent territory.
func fuzzFunction(c, q, v1, v2, v3, x1, x2 float64) (*delay.Piecewise, float64, bool) {
	// Quantize every parameter to a multiple of 1/1024 (an exact binary
	// fraction): progression arithmetic in both the analysis and the
	// scenario replays then stays exact, so the comparison is sharp.
	// Without this, a breakpoint landing inside the two walks'
	// accumulated-rounding window can flip a whole piece-value charge —
	// a float artifact, not an algorithm bug (found by fuzzing; see the
	// seed corpus).
	norm := func(v, lo, hi float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		f := math.Abs(v)
		f = f - math.Floor(f/(hi-lo))*(hi-lo) + lo
		if f < lo || f > hi {
			return 0, false
		}
		return math.Round(f*1024) / 1024, true
	}
	cc, ok := norm(c, 20, 500)
	if !ok {
		return nil, 0, false
	}
	maxV := 8.0
	vv1, ok1 := norm(v1, 0, maxV)
	vv2, ok2 := norm(v2, 0, maxV)
	vv3, ok3 := norm(v3, 0, maxV)
	if !ok1 || !ok2 || !ok3 {
		return nil, 0, false
	}
	xa, oka := norm(x1, 0.05, 0.45)
	xb, okb := norm(x2, 0.55, 0.95)
	if !oka || !okb {
		return nil, 0, false
	}
	qq, okq := norm(q, maxV+0.5, maxV+60)
	if !okq {
		return nil, 0, false
	}
	f, err := delay.NewPiecewise(
		[]float64{0, cc * xa, cc * xb, cc},
		[]float64{vv1, vv2, vv3},
	)
	if err != nil {
		return nil, 0, false
	}
	return f, qq, true
}

// FuzzAlgorithm1Soundness checks, on fuzzer-constructed functions, that the
// Algorithm 1 bound dominates the adversarial scenarios and stays below the
// Equation 4 baseline.
func FuzzAlgorithm1Soundness(f *testing.F) {
	f.Add(100.0, 12.0, 3.0, 1.0, 5.0, 0.2, 0.7)
	f.Add(333.3, 20.0, 7.9, 0.0, 2.5, 0.4, 0.6)
	f.Add(50.0, 9.0, 1.0, 8.0, 1.0, 0.1, 0.9)
	f.Fuzz(func(t *testing.T, c, q, v1, v2, v3, x1, x2 float64) {
		fn, qq, ok := fuzzFunction(c, q, v1, v2, v3, x1, x2)
		if !ok {
			t.Skip()
		}
		bound, err := UpperBound(fn, qq)
		if err != nil {
			t.Fatal(err)
		}
		if bound < 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
			t.Fatalf("bound not a finite non-negative value: %v (Q=%g, f=%v)", bound, qq, fn)
		}
		soa, err := StateOfTheArt(fn, qq)
		if err != nil {
			t.Fatal(err)
		}
		if soa < 0 || math.IsNaN(soa) || math.IsInf(soa, 0) {
			t.Fatalf("soa bound not a finite non-negative value: %v (Q=%g, f=%v)", soa, qq, fn)
		}
		if bound > soa+1e-6 {
			t.Fatalf("dominance violated: alg1 %g > soa %g (Q=%g, f=%v)", bound, soa, qq, fn)
		}
		_, greedy := GreedyScenario(fn, qq)
		if greedy.TotalDelay > bound+1e-9 {
			t.Fatalf("greedy %g beats bound %g (Q=%g, f=%v)", greedy.TotalDelay, bound, qq, fn)
		}
		_, peak := PeakSeekingScenario(fn, qq)
		if peak.TotalDelay > bound+1e-9 {
			t.Fatalf("peak %g beats bound %g (Q=%g, f=%v)", peak.TotalDelay, bound, qq, fn)
		}
		// The limited bound at the greedy preemption count also covers
		// the greedy run.
		lim, err := UpperBoundLimited(fn, qq, greedy.Preemptions)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.TotalDelay > lim+1e-9 {
			t.Fatalf("greedy %g beats limited bound %g at n=%d", greedy.TotalDelay, lim, greedy.Preemptions)
		}
		// The indexed kernel must reproduce the scan kernel's walk exactly:
		// same bound, same preemption count, same per-iteration trace, bit
		// for bit. Any drift here is a query-kernel equivalence bug, not a
		// rounding nuance.
		res, err := UpperBoundTrace(fn, qq)
		if err != nil {
			t.Fatal(err)
		}
		ires, err := UpperBoundTrace(delay.NewIndexed(fn), qq)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalDelay != ires.TotalDelay || res.Preemptions != ires.Preemptions || res.Diverged != ires.Diverged {
			t.Fatalf("indexed walk differs: scan (%v, %d, %v) vs indexed (%v, %d, %v) (Q=%g, f=%v)",
				res.TotalDelay, res.Preemptions, res.Diverged,
				ires.TotalDelay, ires.Preemptions, ires.Diverged, qq, fn)
		}
		for i := range res.Iterations {
			if res.Iterations[i] != ires.Iterations[i] {
				t.Fatalf("iteration %d differs: scan %+v vs indexed %+v (Q=%g, f=%v)",
					i, res.Iterations[i], ires.Iterations[i], qq, fn)
			}
		}
	})
}

package core

import (
	"fmt"
	"math"

	"fnpr/internal/delay"
)

// This file models concrete run-time preemption scenarios under the floating
// non-preemptive region semantics, used to validate Theorem 1 empirically and
// to reproduce the Figure 2 counter-example against the naive bound.
//
// Semantics: let the task's execution-time clock e advance only while the
// task occupies the processor (including time spent repaying preemption
// delay). Under FNPR scheduling with region length Q, preemption i happens at
// execution time e_i with e_1 >= Q and e_{i+1} >= e_i + Q. When preemption i
// strikes, the task's progression through its operations is
//
//	p_i = e_i - sum_{j<i} f(p_j)
//
// (execution time minus delay already repaid), and the preemption costs
// f(p_i) extra execution time. The job completes when its progression reaches
// C = f.Domain().

// Scenario is a concrete preemption scenario: the execution-time instants at
// which preemptions strike. Instants must be >= Q apart and >= Q; instants
// at which the job has already finished are ignored.
type Scenario []float64

// Validate checks the FNPR spacing constraints.
func (s Scenario) Validate(q float64) error {
	prev := 0.0
	for i, e := range s {
		min := prev + q
		if i == 0 {
			min = q
		}
		if e < min-1e-9 {
			return fmt.Errorf("core: preemption %d at execution time %g violates spacing (needs >= %g)", i, e, min)
		}
		prev = e
	}
	return nil
}

// RunResult is the outcome of replaying a scenario.
type RunResult struct {
	// TotalDelay is the cumulative preemption delay actually paid.
	TotalDelay float64
	// Preemptions counts the preemptions that struck before completion.
	Preemptions int
	// Progressions records the task progression at each preemption.
	Progressions []float64
	// FinishTime is the execution time at which the job completes
	// (C + TotalDelay).
	FinishTime float64
}

// Run replays a preemption scenario against the delay function f under FNPR
// semantics with region length Q and returns the delay actually accrued.
// Theorem 1 guarantees UpperBound(f, Q) >= Run(...).TotalDelay for every
// valid scenario; the test suite checks this against adversarial scenarios.
func (s Scenario) Run(f delay.Function, q float64) (RunResult, error) {
	if err := s.Validate(q); err != nil {
		return RunResult{}, err
	}
	c := f.Domain()
	var res RunResult
	for _, e := range s {
		prog := e - res.TotalDelay
		if prog >= c-completionTol(c, e) {
			break // job already finished before this preemption
		}
		d := f.Eval(prog)
		res.TotalDelay += d
		res.Preemptions++
		res.Progressions = append(res.Progressions, prog)
	}
	res.FinishTime = c + res.TotalDelay
	return res, nil
}

// GreedyScenario builds the scenario that preempts as early and as often as
// the FNPR constraint allows: e_1 = Q, e_{i+1} = e_i + Q, until the job
// finishes. This is the adversary sketched in the lower plot of Figure 2.
func GreedyScenario(f delay.Function, q float64) (Scenario, RunResult) {
	c := f.Domain()
	var s Scenario
	var res RunResult
	e := q
	for {
		prog := e - res.TotalDelay
		if prog >= c-completionTol(c, e) {
			break
		}
		d := f.Eval(prog)
		res.TotalDelay += d
		res.Preemptions++
		res.Progressions = append(res.Progressions, prog)
		s = append(s, e)
		e += q
		if res.Preemptions >= scenarioCap {
			break
		}
	}
	res.FinishTime = c + res.TotalDelay
	return s, res
}

// PeakSeekingScenario preempts, within each successive execution-time window
// of length Q, at the moment the progression passes the point with the
// largest delay reachable in that window — a stronger adversary than the
// greedy one on peaked functions. MaxOn locates the window maxima exactly
// for the piecewise representations.
func PeakSeekingScenario(f delay.Function, q float64) (Scenario, RunResult) {
	c := f.Domain()
	var s Scenario
	var res RunResult
	earliest := q // earliest execution time of the next preemption
	for {
		progAtEarliest := earliest - res.TotalDelay
		if progAtEarliest >= c-completionTol(c, earliest) {
			break
		}
		// The adversary may delay the preemption to hit a higher
		// peak, but waiting costs progression: any strike at
		// execution time e >= earliest catches progression
		// p = e - paid. Search the progression interval
		// [progAtEarliest, c) for the best f value, but only up to
		// one window ahead (waiting longer only helps later windows,
		// which the loop covers anyway).
		limit := math.Min(progAtEarliest+q, c)
		pm, _ := f.MaxOn(progAtEarliest, limit)
		e := pm + res.TotalDelay
		if e < earliest {
			e = earliest
		}
		prog := e - res.TotalDelay
		if prog >= c-completionTol(c, e) {
			break
		}
		d := f.Eval(prog)
		res.TotalDelay += d
		res.Preemptions++
		res.Progressions = append(res.Progressions, prog)
		s = append(s, e)
		earliest = e + q
		if res.Preemptions >= scenarioCap {
			break
		}
	}
	res.FinishTime = c + res.TotalDelay
	return s, res
}

// scenarioCap bounds scenario replay length as a defence against divergent
// (delay >= Q) configurations, which would otherwise stall progression
// forever.
const scenarioCap = 1_000_000

// completionTol is the tolerance for deciding that a job's progression has
// reached C. Scenario execution times accumulate floating-point drift of a
// few ulps per preemption; a "preemption" striking within this sliver of
// the job's end is an artifact of that drift (in exact arithmetic the job
// completes first, which is also Algorithm 1's semantics), found by fuzzing
// — see the seed corpus of FuzzAlgorithm1Soundness.
func completionTol(c, e float64) float64 {
	return 1e-9 * (1 + math.Abs(c) + math.Abs(e))
}
